package xfd

// Fragment-local checking: the per-FD multiset fold state as a
// first-class, mergeable, serializable value. A CheckerSet decides
// T ⊨ Σ by folding each cluster's projection stream into per-FD
// LHS-keyed group maps; everything that fold ever inspects about a
// group is (a) whether two members disagree on the RHS and (b) one
// representative per group — and RHS agreement is an equivalence
// relation (the fold keys encode its classes as byte keys). The fold
// therefore factors over any partition of the projection stream: fold
// each part into its own FoldState, then Merge the states — a group
// violates iff some pair of per-part representatives of one LHS key
// disagrees, exactly what the sharded verdict pass (shardVerdict)
// exploits and what the PR-4 differential suites pinned bit-identical.
//
// SplitFragments produces such a partition structurally: it splits the
// document at ONE top-level sibling group (a relevant root-child
// label), giving each fragment a contiguous run of that group's
// children plus every child of every other label. For clusters whose
// projection chooses in that group, the fragment streams partition the
// full stream as a multiset (tuples.StreamPinned's factorization);
// for clusters that ignore the group, every fragment replays the full
// stream — k identical folds, which neither create nor destroy
// conflicts and merge idempotently. Either way the merged verdict is
// the whole-document verdict, so a document distributed as fragments
// (Abiteboul–Gottlob–Manna, Distributed XML Design) checks as
// independently computed states combined associatively — the substrate
// for multi-node scale-out.
//
// Portability: fold keys never embed process-minted vertex IDs.
// An element value is keyed by its positional address — the spine of
// per-label sibling ordinals from the root (the root itself is the
// empty spine; each step records the node's index among its same-label
// siblings). Within one label path — and an FD side always compares
// values at one fixed path — the address identifies a node uniquely
// and content-independently, so re-encoding vertices as addresses is
// injective exactly where the fold compares them and the verdict is
// unchanged. A Fragment carries the global starting ordinal of its run
// of the split sibling group (Fragment.Start); FoldFragment offsets
// the depth-1 ordinals of that label by it, which places every node of
// every fragment back into whole-document coordinates: children of
// other labels ride along whole and in original order, and subtrees
// are intact, so all other ordinals already agree. States folded in
// different processes — each with its own vertex IDs, even from a
// serialize/reparse round trip — therefore merge soundly with no
// restriction on FD shape; the cross-process differential suite
// (internal/distrib) holds merged remote states bit-identical to the
// local whole-document fold.

import (
	"encoding/binary"
	"fmt"
	"sort"

	"xmlnorm/internal/tuples"
	"xmlnorm/internal/xmltree"
)

// foldStateMagic versions the FoldState wire encoding.
const foldStateMagic = "xnfFS1\x00"

// FoldState is the outcome of folding some sub-multiset of a
// document's projected tuples under one compiled CheckerSet: per FD, a
// violated flag plus one RHS-class representative per LHS group. It is
// the value a fragment-local checker computes and ships; states over
// the same CheckerSet merge associatively and commutatively with
// Merge, and serialize with MarshalBinary. The zero value is not
// usable; start from CheckerSet.NewFoldState or
// CheckerSet.UnmarshalFoldState.
type FoldState struct {
	cs  *CheckerSet
	fds []fdFold
}

// fdFold is one FD's share of the state. groups maps the fold's LHS
// key to the RHS-class key of the group's representative; once
// violated is set the groups map is irrelevant (violation is absorbing
// under Merge) and is dropped — Fold, Merge and UnmarshalFoldState all
// nil it out, so a long-lived state for a violating document retains
// no dead group map.
type fdFold struct {
	groups   map[string]string
	violated bool
}

// Fragment is one independently checkable piece of a document, as
// SplitFragments produces them: a tree holding a contiguous run of the
// split sibling group plus everything else, the label of the group
// that was split, and the run's global starting ordinal within that
// per-label group — the offset FoldFragment applies so fold keys
// address nodes in whole-document coordinates. A whole document is the
// fragment {Tree, "", 0}.
type Fragment struct {
	Tree  *xmltree.Tree
	Label string
	Start int
}

// NewFoldState returns an empty fold state for the set: the state of
// zero tuples, the identity of Merge.
func (cs *CheckerSet) NewFoldState() *FoldState {
	st := &FoldState{cs: cs, fds: make([]fdFold, len(cs.fds))}
	for i := range st.fds {
		st.fds[i].groups = make(map[string]string)
	}
	return st
}

// Fold folds one whole document into the state: the fragment
// {t, "", 0}. See FoldFragment.
func (st *FoldState) Fold(t *xmltree.Tree) { st.FoldFragment(Fragment{Tree: t}) }

// FoldFragment folds one fragment into the state: every cluster whose
// root label matches streams its projection once, and each tuple's
// (LHS key, RHS class) lands in the group maps of the cluster's FDs.
// Element values are keyed by their positional address offset by
// f.Start (see the package comment), so a state folded from the whole
// document decides each FD exactly like CheckerSet.Check, and states
// folded from SplitFragments' fragments — in this process or any other
// — merge to the whole-document verdict. Folding several fragments
// into one state is equivalent to folding each into its own state and
// merging. A cluster walk short-circuits once all its FDs are violated
// (violation is absorbing).
func (st *FoldState) FoldFragment(f Fragment) {
	cs := st.cs
	var addrs map[xmltree.NodeID]string
	if cs.elemSides {
		addrs = fragmentAddrs(f)
	}
	for ci := range cs.clusters {
		cl := &cs.clusters[ci]
		if cl.label != f.Tree.Root.Label {
			continue
		}
		remaining := 0
		for _, fi := range cl.fds {
			if !st.fds[fi].violated {
				remaining++
			}
		}
		if remaining == 0 {
			continue
		}
		var lhsBuf, rhsBuf []byte
		cl.pr.Stream(f.Tree, func(tup tuples.Tuple) bool {
			for _, fi := range cl.fds {
				fd := &st.fds[fi]
				if fd.violated {
					continue
				}
				lhsK, rhsK, applies := cs.appendPortableKeys(tup, fi, addrs, lhsBuf[:0], rhsBuf[:0])
				lhsBuf, rhsBuf = lhsK, rhsK
				if !applies {
					continue
				}
				rep, seen := fd.groups[string(lhsK)]
				if !seen {
					fd.groups[string(lhsK)] = string(rhsK)
					continue
				}
				if rep == string(rhsK) {
					continue
				}
				fd.violated = true
				fd.groups = nil
				remaining--
			}
			return remaining > 0
		})
	}
}

// fragmentAddrs assigns every node of the fragment its positional
// address: the spine of per-label sibling ordinals from the root,
// encoded as a uvarint sequence (the root is the empty spine). Depth-1
// children carrying the fragment's split label have their ordinal
// offset by f.Start, which puts the whole table into whole-document
// coordinates; all other ordinals are already global because children
// of other labels ride along whole and in order, and subtrees are
// intact.
func fragmentAddrs(f Fragment) map[xmltree.NodeID]string {
	addrs := make(map[xmltree.NodeID]string)
	addrs[f.Tree.Root.ID] = ""
	var walk func(n *xmltree.Node, prefix []byte, depth int)
	walk = func(n *xmltree.Node, prefix []byte, depth int) {
		if len(n.Children) == 0 {
			return
		}
		counts := make(map[string]int, 4)
		for _, c := range n.Children {
			ord := counts[c.Label]
			counts[c.Label]++
			if depth == 0 && c.Label == f.Label {
				ord += f.Start
			}
			// Full-slice the prefix so sibling appends never share
			// backing arrays.
			addr := appendUvarint(prefix[:len(prefix):len(prefix)], uint64(ord))
			addrs[c.ID] = string(addr)
			walk(c, addr, depth+1)
		}
	}
	walk(f.Tree.Root, nil, 0)
	return addrs
}

// appendPortableKeys computes FD fi's fold keys for one projected
// tuple — the FoldState analog of AppendFoldKeys, with every vertex
// value encoded through the fragment's address table instead of its
// process-minted NodeID, which is what makes marshaled states
// comparable and mergeable across processes. addrs may be nil only
// when no FD side of the set mentions an element-valued path.
func (cs *CheckerSet) appendPortableKeys(tup tuples.Tuple, fi int, addrs map[xmltree.NodeID]string, lhsDst, rhsDst []byte) (lhsK, rhsK []byte, applies bool) {
	cf := &cs.fds[fi]
	lhsK = lhsDst
	for _, id := range cf.lhs {
		v, ok := tup.GetID(id)
		if !ok {
			return lhsK, rhsDst, false
		}
		lhsK = appendPortableValue(lhsK, v, addrs)
	}
	rhsK = rhsDst
	for _, id := range cf.rhs {
		v, ok := tup.GetID(id)
		if !ok {
			rhsK = append(rhsK, 0) // ⊥: present-vs-absent must differ
			continue
		}
		rhsK = appendPortableValue(rhsK, v, addrs)
	}
	return lhsK, rhsK, true
}

// appendPortableValue appends one self-delimiting value encoding:
// vertices as tag 1 + length-prefixed positional address, strings as
// tag 2 + length-prefixed bytes (tag 0 is the RHS ⊥ marker).
func appendPortableValue(dst []byte, v tuples.Value, addrs map[xmltree.NodeID]string) []byte {
	if v.IsNode() {
		a := addrs[v.Node()]
		dst = append(dst, 1)
		dst = appendUvarint(dst, uint64(len(a)))
		return append(dst, a...)
	}
	s := v.Str()
	dst = append(dst, 2)
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// Merge folds another state into this one. Merge is associative and
// commutative on verdicts: a violated flag absorbs, and an LHS group
// becomes violated as soon as two representatives with distinct RHS
// classes meet — since within a conflict-free part every member of a
// group RHS-agrees with its representative and RHS agreement is
// transitive, the merged verdict per FD is exactly the verdict of
// folding the union multiset. Both states must come from the same
// CheckerSet (or its UnmarshalFoldState); other is not mutated and
// remains usable.
func (st *FoldState) Merge(other *FoldState) error {
	if other.cs != st.cs || len(other.fds) != len(st.fds) {
		return fmt.Errorf("xfd: merging fold states of different checker sets")
	}
	for fi := range st.fds {
		dst, src := &st.fds[fi], &other.fds[fi]
		if dst.violated {
			continue
		}
		if src.violated {
			dst.violated, dst.groups = true, nil
			continue
		}
		for lhsK, rhsK := range src.groups {
			rep, seen := dst.groups[lhsK]
			if !seen {
				dst.groups[lhsK] = rhsK
				continue
			}
			if rep != rhsK {
				dst.violated, dst.groups = true, nil
				break
			}
		}
	}
	return nil
}

// Violated returns the indices (Σ order) of the FDs the folded
// multiset violates. On a state folded from a whole document — or
// merged from fragments of one — this is exactly the violated set of
// CheckerSet.Violations; pass it to WitnessReport to re-derive the
// canonical witness report.
func (st *FoldState) Violated() []int {
	var out []int
	for fi := range st.fds {
		if st.fds[fi].violated {
			out = append(out, fi)
		}
	}
	return out
}

// ViolatedSet returns the violated FD indices as the set WitnessReport
// consumes; nil when the folded multiset satisfies Σ.
func (st *FoldState) ViolatedSet() map[int]bool {
	var out map[int]bool
	for fi := range st.fds {
		if st.fds[fi].violated {
			if out == nil {
				out = make(map[int]bool)
			}
			out[fi] = true
		}
	}
	return out
}

// Satisfied reports whether the folded multiset violates no FD.
func (st *FoldState) Satisfied() bool {
	for fi := range st.fds {
		if st.fds[fi].violated {
			return false
		}
	}
	return true
}

// MarshalBinary serializes the state: a magic header, the FD count,
// then per FD the violated flag and the (LHS key, RHS class) pairs in
// sorted LHS-key order. The encoding is canonical — two states marshal
// to identical bytes iff they carry identical verdicts and group
// representatives — which is what lets the differential suites assert
// cross-process merges bit-identical to local folds.
func (st *FoldState) MarshalBinary() ([]byte, error) {
	out := []byte(foldStateMagic)
	out = binary.AppendUvarint(out, uint64(len(st.fds)))
	for fi := range st.fds {
		f := &st.fds[fi]
		if f.violated {
			out = append(out, 1)
			continue
		}
		out = append(out, 0)
		out = binary.AppendUvarint(out, uint64(len(f.groups)))
		keys := make([]string, 0, len(f.groups))
		for lhsK := range f.groups {
			keys = append(keys, lhsK)
		}
		sort.Strings(keys)
		for _, lhsK := range keys {
			rhsK := f.groups[lhsK]
			out = binary.AppendUvarint(out, uint64(len(lhsK)))
			out = append(out, lhsK...)
			out = binary.AppendUvarint(out, uint64(len(rhsK)))
			out = append(out, rhsK...)
		}
	}
	return out, nil
}

// UnmarshalFoldState decodes a state MarshalBinary produced, bound to
// this CheckerSet. The encoding carries the FD count as a cheap guard;
// it is the caller's contract that the bytes were marshaled under an
// identically compiled set (same Σ in the same order).
func (cs *CheckerSet) UnmarshalFoldState(data []byte) (*FoldState, error) {
	if len(data) < len(foldStateMagic) || string(data[:len(foldStateMagic)]) != foldStateMagic {
		return nil, fmt.Errorf("xfd: fold state: bad magic")
	}
	data = data[len(foldStateMagic):]
	n, k := binary.Uvarint(data)
	if k <= 0 || n != uint64(len(cs.fds)) {
		return nil, fmt.Errorf("xfd: fold state: encoded for %d FDs, checker set has %d", n, len(cs.fds))
	}
	data = data[k:]
	readUvarint := func() (uint64, error) {
		v, k := binary.Uvarint(data)
		if k <= 0 {
			return 0, fmt.Errorf("xfd: fold state: truncated")
		}
		data = data[k:]
		return v, nil
	}
	readBytes := func() (string, error) {
		l, err := readUvarint()
		if err != nil {
			return "", err
		}
		if uint64(len(data)) < l {
			return "", fmt.Errorf("xfd: fold state: truncated")
		}
		s := string(data[:l])
		data = data[l:]
		return s, nil
	}
	st := &FoldState{cs: cs, fds: make([]fdFold, len(cs.fds))}
	for fi := range st.fds {
		if len(data) == 0 {
			return nil, fmt.Errorf("xfd: fold state: truncated")
		}
		violated := data[0] != 0
		data = data[1:]
		if violated {
			st.fds[fi].violated = true
			continue
		}
		groups, err := readUvarint()
		if err != nil {
			return nil, err
		}
		st.fds[fi].groups = make(map[string]string, groups)
		for g := uint64(0); g < groups; g++ {
			lhsK, err := readBytes()
			if err != nil {
				return nil, err
			}
			rhsK, err := readBytes()
			if err != nil {
				return nil, err
			}
			st.fds[fi].groups[lhsK] = rhsK
		}
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("xfd: fold state: %d trailing bytes", len(data))
	}
	return st, nil
}

// SplitFragments splits the document at one top-level sibling group
// into at most k independently checkable fragments: it picks the
// relevant root-child label (a label some applicable cluster's
// projection chooses in) with the most children and deals that group's
// children into contiguous runs, one per fragment; every child of
// every other label — and the root itself, shared shallow copies with
// the original's ID, attributes and text — rides along in each
// fragment, so no fragment fabricates an empty relevant group (an
// empty group would project spurious ⊥ choices the whole document
// never makes). Each fragment records the split label and its run's
// global starting ordinal, which FoldFragment needs to key element
// values in whole-document coordinates. Folding each fragment into a
// FoldState and merging yields the whole document's verdict; see the
// fragment.go package comment for why. When nothing is splittable
// (k < 2, no applicable cluster, or no relevant group with two
// children) the document is returned as the single whole fragment.
// Fragments share the original's nodes: safe to fold concurrently, not
// to mutate.
func (cs *CheckerSet) SplitFragments(t *xmltree.Tree, k int) []Fragment {
	label := ""
	if k >= 2 {
		counts := make(map[string]int, 8)
		for _, c := range t.Root.Children {
			counts[c.Label]++
		}
		bestN := 1
		for ci := range cs.clusters {
			cl := &cs.clusters[ci]
			if cl.label != t.Root.Label {
				continue
			}
			for _, l := range cl.pr.RootChoiceLabels() {
				if n := counts[l]; n > bestN {
					label, bestN = l, n
				}
			}
		}
	}
	if label == "" {
		return []Fragment{{Tree: t}}
	}
	var mine, others []*xmltree.Node
	for _, c := range t.Root.Children {
		if c.Label == label {
			mine = append(mine, c)
		} else {
			others = append(others, c)
		}
	}
	if k > len(mine) {
		k = len(mine)
	}
	frags := make([]Fragment, 0, k)
	for f := 0; f < k; f++ {
		// Contiguous runs covering mine exactly once.
		lo, hi := f*len(mine)/k, (f+1)*len(mine)/k
		root := &xmltree.Node{
			ID:      t.Root.ID,
			Label:   t.Root.Label,
			Attrs:   t.Root.Attrs,
			Text:    t.Root.Text,
			HasText: t.Root.HasText,
		}
		root.Children = make([]*xmltree.Node, 0, hi-lo+len(others))
		root.Children = append(append(root.Children, mine[lo:hi]...), others...)
		frags = append(frags, Fragment{Tree: &xmltree.Tree{Root: root}, Label: label, Start: lo})
	}
	return frags
}
