package xfd_test

// Differential suite for fragment-local checking: folding the
// fragments of SplitFragments into FoldStates and merging them — in
// any association order, with a serialization round trip in the middle
// — must reproduce the whole-document verdict FD for FD, and the
// witness report re-derived from the merged verdict must be
// bit-identical to CheckerSet.Violations. Run under -race in CI:
// fragments share the original tree's nodes, so the parallel fold is
// also a concurrency test.

import (
	"math/rand"
	"strings"
	"testing"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/gen"
	"xmlnorm/internal/paths"
	"xmlnorm/internal/pool"
	"xmlnorm/internal/tuples"
	"xmlnorm/internal/xfd"
	"xmlnorm/internal/xmltree"
)

// violatedIndices extracts the Σ indices of a Violations report.
func violatedIndices(cs *xfd.CheckerSet, report []xfd.Violated) []int {
	var out []int
	for i := 0; i < cs.Len(); i++ {
		for _, v := range report {
			if v.FD.Equal(cs.FDAt(i)) {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mergeAll merges the states pairwise in a random association order
// (a binary tree shaped by rng), exercising associativity and
// commutativity beyond the plain left fold.
func mergeAll(t *testing.T, states []*xfd.FoldState, rng *rand.Rand) *xfd.FoldState {
	t.Helper()
	for len(states) > 1 {
		i := rng.Intn(len(states) - 1)
		if err := states[i].Merge(states[i+1]); err != nil {
			t.Fatalf("Merge: %v", err)
		}
		states = append(states[:i+1], states[i+2:]...)
	}
	return states[0]
}

// TestFoldStateDifferential runs ≥1000 random (DTD, document, σ)
// instances and checks, per instance and for several fragment counts:
//
//   - a FoldState folded from the whole document reports exactly the
//     violated indices of CheckerSet.Violations;
//   - folding each SplitFragments fragment independently (in parallel,
//     over the worker pool) and merging — left fold and random
//     association order — reproduces that verdict;
//   - a MarshalBinary/UnmarshalFoldState round trip of every fragment
//     state before merging changes nothing;
//   - folding each fragment from a serialize/reparse round trip of its
//     tree — fresh vertex IDs, as a remote worker would mint — merges
//     to a state whose canonical encoding is bit-identical to the
//     whole-document fold's (the portable-addressing contract; the
//     random σ draws element-valued sides regularly);
//   - WitnessReport over the merged verdict is bit-identical to the
//     sequential Violations report.
func TestFoldStateDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20020808))
	instances := 0
	for instances < 1000 {
		d := gen.RandomSimpleDTD(rng)
		doc, err := gen.Document(d, rng, 2, 3)
		if err != nil {
			t.Fatalf("gen.Document: %v", err)
		}
		if tuples.CountTuples(doc, 0) > 2000 {
			continue
		}
		instances++
		u, err := paths.New(d)
		if err != nil {
			t.Fatalf("paths.New: %v", err)
		}
		all, err := d.Paths()
		if err != nil {
			t.Fatal(err)
		}
		sigma := make([]xfd.FD, 3)
		for k := range sigma {
			var f xfd.FD
			for j := 0; j < 1+rng.Intn(2); j++ {
				f.LHS = append(f.LHS, all[rng.Intn(len(all))])
			}
			f.RHS = []dtd.Path{all[rng.Intn(len(all))]}
			sigma[k] = f
		}
		cs, err := xfd.NewCheckerSet(u, sigma)
		if err != nil {
			t.Fatalf("NewCheckerSet: %v", err)
		}
		seq := cs.Violations(doc)
		want := violatedIndices(cs, seq)

		whole := cs.NewFoldState()
		whole.Fold(doc)
		if got := whole.Violated(); !sameInts(got, want) {
			t.Fatalf("instance %d: whole-document fold violated %v, Violations %v\nDTD:\n%s\ndoc:\n%s",
				instances, got, want, d, doc)
		}
		wholeBytes, err := whole.MarshalBinary()
		if err != nil {
			t.Fatalf("MarshalBinary: %v", err)
		}

		for _, k := range []int{1, 2, 3, 7} {
			frags := cs.SplitFragments(doc, k)
			states := make([]*xfd.FoldState, len(frags))
			remote := make([]*xfd.FoldState, len(frags))
			if err := pool.ForEach(4, len(frags), func(i int) error {
				states[i] = cs.NewFoldState()
				states[i].FoldFragment(frags[i])
				// The cross-process leg: re-fold the fragment from a
				// serialize/reparse round trip, which mints fresh
				// vertex IDs exactly like a worker process would.
				reparsed, err := xmltree.ParseString(frags[i].Tree.String())
				if err != nil {
					return err
				}
				remote[i] = cs.NewFoldState()
				remote[i].FoldFragment(xfd.Fragment{Tree: reparsed, Label: frags[i].Label, Start: frags[i].Start})
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			// Serialization round trip for every fragment state.
			for i, st := range states {
				data, err := st.MarshalBinary()
				if err != nil {
					t.Fatalf("MarshalBinary: %v", err)
				}
				if states[i], err = cs.UnmarshalFoldState(data); err != nil {
					t.Fatalf("UnmarshalFoldState: %v", err)
				}
			}
			merged := mergeAll(t, states, rng)
			if got := merged.Violated(); !sameInts(got, want) {
				t.Fatalf("instance %d: %d fragments merged violated %v, want %v\nDTD:\n%s\ndoc:\n%s",
					instances, len(frags), got, want, d, doc)
			}
			if got := merged.Satisfied(); got != (len(want) == 0) {
				t.Fatalf("instance %d: merged Satisfied = %v, want %v", instances, got, len(want) == 0)
			}
			sameReports(t, seq, cs.WitnessReport(doc, merged.ViolatedSet()), "fragment-merged report")

			remoteMerged := mergeAll(t, remote, rng)
			remoteBytes, err := remoteMerged.MarshalBinary()
			if err != nil {
				t.Fatalf("MarshalBinary: %v", err)
			}
			if string(remoteBytes) != string(wholeBytes) {
				t.Fatalf("instance %d: k=%d reparsed-fragment merge is not bit-identical to the whole-document fold\nDTD:\n%s\ndoc:\n%s",
					instances, k, d, doc)
			}
		}
	}
}

// TestSplitFragmentsPartition pins the structural contract: the chosen
// sibling group's children are dealt to the fragments exactly once in
// document order, each fragment carries the split label and the global
// starting ordinal of its run, every other child rides along in each
// fragment, and all fragment roots share the original root's vertex
// ID.
func TestSplitFragmentsPartition(t *testing.T) {
	doc, err := xmltree.ParseString(
		"<r><c k=\"1\"/><c k=\"2\"/><c k=\"3\"/><c k=\"4\"/><c k=\"5\"/><o/><o/></r>")
	if err != nil {
		t.Fatal(err)
	}
	sigma := []xfd.FD{xfd.New([]string{"r.c.@k"}, []string{"r.c"})}
	cs, err := xfd.NewCheckerSetFor(sigma)
	if err != nil {
		t.Fatal(err)
	}
	frags := cs.SplitFragments(doc, 3)
	if len(frags) != 3 {
		t.Fatalf("got %d fragments, want 3", len(frags))
	}
	var seen []string
	for _, f := range frags {
		if f.Tree.Root.ID != doc.Root.ID {
			t.Fatalf("fragment root ID %d, want the original %d", f.Tree.Root.ID, doc.Root.ID)
		}
		if f.Label != "c" {
			t.Fatalf("fragment split label %q, want \"c\"", f.Label)
		}
		if f.Start != len(seen) {
			t.Fatalf("fragment starting ordinal %d, want %d", f.Start, len(seen))
		}
		others := 0
		for _, c := range f.Tree.Root.Children {
			switch c.Label {
			case "c":
				seen = append(seen, c.Attrs["k"])
			case "o":
				others++
			}
		}
		if others != 2 {
			t.Fatalf("fragment carries %d 'o' children, want all 2", others)
		}
	}
	if got := strings.Join(seen, ""); got != "12345" {
		t.Fatalf("fragments cover the c group as %q, want \"12345\"", got)
	}

	// More fragments than children caps at one child per fragment.
	if got := len(cs.SplitFragments(doc, 99)); got != 5 {
		t.Fatalf("k=99 gives %d fragments, want 5", got)
	}
	// k < 2 and documents with nothing splittable return the whole
	// document as the single offset-free fragment.
	if got := cs.SplitFragments(doc, 1); len(got) != 1 || got[0].Tree != doc || got[0].Label != "" || got[0].Start != 0 {
		t.Fatalf("k=1 must return the document itself as the whole fragment")
	}
	single, err := xmltree.ParseString("<r><c k=\"1\"/></r>")
	if err != nil {
		t.Fatal(err)
	}
	if got := cs.SplitFragments(single, 4); len(got) != 1 || got[0].Tree != single {
		t.Fatalf("a one-child group must not split")
	}
	foreign, err := xmltree.ParseString("<z><c/><c/></z>")
	if err != nil {
		t.Fatal(err)
	}
	if got := cs.SplitFragments(foreign, 4); len(got) != 1 || got[0].Tree != foreign {
		t.Fatalf("a foreign root label must not split")
	}
}

// TestFoldStateErrors pins the failure contracts: merging states of
// different checker sets fails, and corrupt or mismatched encodings
// are rejected with errors rather than silently misfolding.
func TestFoldStateErrors(t *testing.T) {
	csA, err := xfd.NewCheckerSetFor([]xfd.FD{xfd.New([]string{"r.c.@k"}, []string{"r.c"})})
	if err != nil {
		t.Fatal(err)
	}
	csB, err := xfd.NewCheckerSetFor([]xfd.FD{
		xfd.New([]string{"r.c.@k"}, []string{"r.c"}),
		xfd.New([]string{"r.c"}, []string{"r.c.@k"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := csA.NewFoldState().Merge(csB.NewFoldState()); err == nil {
		t.Fatal("merging states of different checker sets must fail")
	}
	data, err := csB.NewFoldState().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := csA.UnmarshalFoldState(data); err == nil {
		t.Fatal("unmarshaling a two-FD state into a one-FD set must fail")
	}
	if _, err := csA.UnmarshalFoldState([]byte("bogus")); err == nil {
		t.Fatal("bad magic must fail")
	}
	if _, err := csA.UnmarshalFoldState(data[:len(data)-1]); err == nil {
		t.Fatal("truncated input must fail")
	}
	doc, err := xmltree.ParseString("<r><c k=\"1\"/><c k=\"2\"/></r>")
	if err != nil {
		t.Fatal(err)
	}
	st := csA.NewFoldState()
	st.Fold(doc)
	good, err := st.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := csA.UnmarshalFoldState(append(good, 0)); err == nil {
		t.Fatal("trailing bytes must fail")
	}
	back, err := csA.UnmarshalFoldState(good)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !back.Satisfied() {
		t.Fatal("round-tripped satisfied state must stay satisfied")
	}
}
