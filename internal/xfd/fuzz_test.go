package xfd

import "testing"

// FuzzParse checks the FD parser never panics and round-trips.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"a -> b", "a.b, c.@d -> e.S", "->", "a ->", "a -> b -> c", "a,,b -> c",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		fd, err := Parse(input)
		if err != nil {
			return
		}
		again, err := Parse(fd.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", fd, err)
		}
		if !fd.Equal(again) {
			t.Fatalf("round trip changed %q", input)
		}
	})
}
