package xfd

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"xmlnorm/internal/paperdata"
	"xmlnorm/internal/xmltree"
)

// FuzzParse checks the FD parser never panics and round-trips.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"a -> b", "a.b, c.@d -> e.S", "->", "a ->", "a -> b -> c", "a,,b -> c",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		fd, err := Parse(input)
		if err != nil {
			return
		}
		again, err := Parse(fd.String())
		if err != nil {
			t.Fatalf("reparse of %q failed: %v", fd, err)
		}
		if !fd.Equal(again) {
			t.Fatalf("round trip changed %q", input)
		}
	})
}

// FuzzCheckReader feeds raw XML bytes through the streaming checker:
// it must never panic, must reject exactly the inputs xmltree.Parse
// rejects (with typed errors and identical messages, modulo the depth
// guard), and must reproduce the tree checker's canonical violation
// report whenever the input parses.
func FuzzCheckReader(f *testing.F) {
	sigma := []FD{
		MustParse("courses.course.@cno -> courses.course.title.S"),
		MustParse("r.c.@k -> r.c.@v"),
		MustParse("r.c.@k -> r.c"),
	}
	cs, err := NewCheckerSetFor(sigma)
	if err != nil {
		f.Fatal(err)
	}
	courses := []byte(paperdata.MustRead("courses.xml"))
	f.Add(courses)
	f.Add(courses[:len(courses)/2]) // malformed truncation
	f.Add([]byte(paperdata.MustRead("dblp.xml")))
	for _, s := range []string{
		"<r><c k=\"1\" v=\"a\"/><c k=\"1\" v=\"b\"/></r>",
		"<r><c k=\"1\"/><c k=\"1\"/></r>",
		"<r>text<c/></r>",
		"<r/><r/>",
		"<r>",
		"</r>",
		"",
		"<r><pad><deep><deep/></deep></pad></r>",
		"<r k=\"&broken;\"/>",
	} {
		f.Add([]byte(s))
	}
	const depth = 64
	f.Fuzz(func(t *testing.T, data []byte) {
		got, rerr := cs.ViolationsReader(bytes.NewReader(data), ReaderOptions{MaxDepth: depth})
		tree, perr := xmltree.Parse(bytes.NewReader(data))
		if rerr != nil {
			var de *xmltree.DepthError
			if errors.As(rerr, &de) {
				if de.Limit != depth || de.Depth != depth+1 {
					t.Fatalf("DepthError = %+v, want limit %d", de, depth)
				}
				return // Parse has no depth limit; no agreement to check
			}
			var me *xmltree.MalformedError
			if !errors.As(rerr, &me) {
				t.Fatalf("untyped reader error: %v", rerr)
			}
			if perr == nil {
				t.Fatalf("reader rejected input Parse accepts: %v", rerr)
			}
			if rerr.Error() != perr.Error() {
				t.Fatalf("reader error %q, Parse error %q", rerr, perr)
			}
			return
		}
		if perr != nil {
			t.Fatalf("reader accepted input Parse rejects: %v", perr)
		}
		want := cs.Violations(tree)
		if w, g := CanonicalReport(want), CanonicalReport(got); w != g {
			t.Fatalf("reports differ\ntree:\n%s\nreader:\n%s\ninput: %q", w, g, data)
		}
	})
}

// TestFuzzCheckReaderSeeds runs the fuzz body over its seed corpus in
// a regular test run (go test does run seeds, but keeping an explicit
// deep-nesting probe here pins the depth-guard interplay).
func TestFuzzCheckReaderSeeds(t *testing.T) {
	cs, err := NewCheckerSetFor([]FD{MustParse("r.c.@k -> r.c.@v")})
	if err != nil {
		t.Fatal(err)
	}
	over := strings.Repeat("<r>", 65) + strings.Repeat("</r>", 65)
	_, rerr := cs.ViolationsReader(strings.NewReader(over), ReaderOptions{MaxDepth: 64})
	var de *xmltree.DepthError
	if !errors.As(rerr, &de) {
		t.Fatalf("want DepthError, got %v", rerr)
	}
}
