package xfd

// Exported fold/unfold hooks for the incremental checking engine
// (internal/incremental). A CheckerSet compiles Σ into clusters, each
// with a union projector and per-FD (LHS, RHS) path-ID sides; the
// sequential and sharded passes fold projection streams into per-FD
// LHS-keyed group maps using those compiled sides. The incremental
// Session maintains the same group maps with reference counts across
// edits, so it needs the cluster layout, the projectors (to run pinned
// delta streams), and the exact key encodings — exposed here so the
// maps it maintains are keyed identically to the ones a from-scratch
// pass would build, which is what makes "re-derive witnesses through
// checkCluster" yield reports bit-identical to Violations.

import (
	"xmlnorm/internal/tuples"
	"xmlnorm/internal/xmltree"
)

// NumClusters returns the number of FD clusters the set compiled to.
func (cs *CheckerSet) NumClusters() int { return len(cs.clusters) }

// ClusterLabel returns the root label cluster ci applies to: on
// documents with any other root label, all of the cluster's FDs are
// vacuously satisfied.
func (cs *CheckerSet) ClusterLabel(ci int) string { return cs.clusters[ci].label }

// ClusterFDs returns the indices (into Σ order, as FDAt addresses
// them) of the FDs decided by cluster ci's stream. The slice is
// shared; do not mutate it.
func (cs *CheckerSet) ClusterFDs(ci int) []int { return cs.clusters[ci].fds }

// ClusterProjector returns the union projector feeding cluster ci —
// the one whose Stream (and StreamPinned) enumerates the tuples every
// FD of the cluster is folded over.
func (cs *CheckerSet) ClusterProjector(ci int) *tuples.Projector { return cs.clusters[ci].pr }

// AppendFoldKeys computes the group-map keys of one projected tuple
// under FD fi (Σ index): the LHS key the fold groups by and an RHS key
// that is equal between two tuples of a group exactly when sameRHS
// holds — i.e. grouping refcounts by (lhsKey, rhsKey) counts RHS
// equivalence classes, and an LHS group violates the FD iff it holds
// two distinct RHS keys. applies is false when some LHS value is ⊥
// (the FD does not constrain the tuple; key contents are then
// unspecified). Keys are appended to the dst slices (pass buf[:0] to
// reuse); the returned slices alias them.
func (cs *CheckerSet) AppendFoldKeys(tup tuples.Tuple, fi int, lhsDst, rhsDst []byte) (lhsK, rhsK []byte, applies bool) {
	cf := &cs.fds[fi]
	lhsK, ok := lhsKey(tup, cf.lhs, lhsDst)
	if !ok {
		return lhsK, rhsDst, false
	}
	rhsK = rhsDst
	for _, id := range cf.rhs {
		v, ok := tup.GetID(id)
		switch {
		case !ok:
			rhsK = append(rhsK, 0) // ⊥: present-vs-absent must differ
		case v.IsNode():
			rhsK = append(rhsK, 1)
			rhsK = appendUvarint(rhsK, uint64(v.Node()))
		default:
			s := v.Str()
			rhsK = append(rhsK, 2)
			rhsK = appendUvarint(rhsK, uint64(len(s)))
			rhsK = append(rhsK, s...)
		}
	}
	return lhsK, rhsK, true
}

// WitnessReport re-derives the violation report for a known verdict:
// given the set of violated FD indices, it runs one sequential stream
// per applicable cluster restricted to those FDs and returns the same
// []Violated — first-conflict witnesses in Σ order — that Violations
// would produce on the document. This is how both the sharded checker
// and the incremental Session turn a cheap verdict into the canonical
// report; a nil/empty bad set returns nil without walking anything.
func (cs *CheckerSet) WitnessReport(t *xmltree.Tree, bad map[int]bool) []Violated {
	if len(bad) == 0 {
		return nil
	}
	witnesses := make(map[int][2]tuples.Tuple, len(bad))
	for ci := range cs.clusters {
		cl := &cs.clusters[ci]
		if cl.label != t.Root.Label {
			continue
		}
		cs.checkCluster(cl, t, bad, func(i int, w [2]tuples.Tuple) bool {
			witnesses[i] = w
			return true
		})
	}
	return cs.report(witnesses)
}
