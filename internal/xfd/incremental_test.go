package xfd_test

// Tests for the exported incremental hooks: folding every cluster
// stream by (LHS key, RHS key) must decide exactly the FDs Violations
// reports — the RHS key is injective with respect to RHS agreement, so
// "some LHS key holds two distinct RHS keys" IS the violation
// condition — and WitnessReport must reconstruct the full Violations
// report from nothing but the verdict set.

import (
	"math/rand"
	"testing"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/gen"
	"xmlnorm/internal/paths"
	"xmlnorm/internal/tuples"
	"xmlnorm/internal/xfd"
	"xmlnorm/internal/xmltree"
)

// foldVerdict decides the violated FD set by grouping cluster streams
// with AppendFoldKeys — the exact bookkeeping the incremental Session
// maintains across edits, run here from scratch.
func foldVerdict(cs *xfd.CheckerSet, doc *xmltree.Tree) map[int]bool {
	bad := map[int]bool{}
	for ci := 0; ci < cs.NumClusters(); ci++ {
		if cs.ClusterLabel(ci) != doc.Root.Label {
			continue
		}
		fds := cs.ClusterFDs(ci)
		groups := make([]map[string]map[string]int, len(fds))
		for li := range fds {
			groups[li] = map[string]map[string]int{}
		}
		var lbuf, rbuf []byte
		cs.ClusterProjector(ci).Stream(doc, func(tup tuples.Tuple) bool {
			for li, fi := range fds {
				lk, rk, applies := cs.AppendFoldKeys(tup, fi, lbuf[:0], rbuf[:0])
				lbuf, rbuf = lk, rk
				if !applies {
					continue
				}
				g := groups[li][string(lk)]
				if g == nil {
					g = map[string]int{}
					groups[li][string(lk)] = g
				}
				g[string(rk)]++
			}
			return true
		})
		for li, fi := range fds {
			for _, g := range groups[li] {
				if len(g) > 1 {
					bad[fi] = true
					break
				}
			}
		}
	}
	return bad
}

// TestFoldKeysDecideViolations runs random (DTD, document, σ)
// instances and checks the fold-key verdict equals the streaming
// checker's, and that WitnessReport over that verdict reproduces the
// Violations report bit for bit.
func TestFoldKeysDecideViolations(t *testing.T) {
	rng := rand.New(rand.NewSource(20020608))
	instances := 0
	for instances < 300 {
		d := gen.RandomSimpleDTD(rng)
		doc, err := gen.Document(d, rng, 2, 3)
		if err != nil {
			t.Fatalf("gen.Document: %v", err)
		}
		if tuples.CountTuples(doc, 0) > 2000 {
			continue
		}
		instances++
		u, err := paths.New(d)
		if err != nil {
			t.Fatal(err)
		}
		all, err := d.Paths()
		if err != nil {
			t.Fatal(err)
		}
		sigma := make([]xfd.FD, 3)
		for k := range sigma {
			var f xfd.FD
			for j := 0; j < 1+rng.Intn(2); j++ {
				f.LHS = append(f.LHS, all[rng.Intn(len(all))])
			}
			f.RHS = []dtd.Path{all[rng.Intn(len(all))]}
			sigma[k] = f
		}
		cs, err := xfd.NewCheckerSet(u, sigma)
		if err != nil {
			t.Fatalf("NewCheckerSet: %v", err)
		}
		want := map[int]bool{}
		cs.Check(doc, func(i int, _ [2]tuples.Tuple) bool {
			want[i] = true
			return true
		})
		got := foldVerdict(cs, doc)
		if len(got) != len(want) {
			t.Fatalf("instance %d: fold verdict has %d violated FDs, Check %d\nDTD:\n%s\ndoc:\n%s",
				instances, len(got), len(want), d, doc)
		}
		for fi := range want {
			if !got[fi] {
				t.Fatalf("instance %d: FD %d violated per Check but not per fold keys", instances, fi)
			}
		}
		sameReports(t, cs.Violations(doc), cs.WitnessReport(doc, got), "WitnessReport")
	}
	if report := (&xfd.CheckerSet{}).WitnessReport(nil, nil); report != nil {
		t.Fatalf("WitnessReport(empty) = %v, want nil", report)
	}
}
