package xfd

// Reader-driven checking: Check/SatisfiesAll/Violations rebuilt over
// the token-fused tuple streamer (tuples.TokenStream), so T ⊨ Σ is
// decided straight off the wire bytes without ever materializing the
// document tree. One xmltree.WalkTokens pass multiplexes the token
// events across the applicable clusters' streams; each stream folds
// its projections into exactly the per-FD LHS-keyed group maps
// checkCluster builds, with the same clone-on-store, first-conflict
// and short-circuit behavior — and because the token streamer yields
// tuples in exactly the tree streamer's order, verdicts and witness
// reports are identical to the tree path's, modulo the process-global
// vertex IDs minted for element paths (CanonicalReport compares
// reports across parses up to that renaming). Memory is bounded by
// nesting depth, the fold maps' live state (finite per Vincent & Liu's
// finiteness of the per-path fold), and any subtrees participating in
// genuine cross products of relevant sibling groups — independent of
// document length for chain-shaped clusters. The walk always consumes
// the reader to the end of the document, even once every FD is decided
// or the caller aborts, so structural acceptance is exactly
// xmltree.Parse's: malformed input fails with xmltree.MalformedError,
// over-deep input with xmltree.DepthError.

import (
	"fmt"
	"io"
	"strings"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/tuples"
	"xmlnorm/internal/xmltree"
)

// ReaderOptions configures the reader-driven checking entry points.
type ReaderOptions struct {
	// MaxDepth bounds element nesting: deeper input fails with a
	// *xmltree.DepthError. Zero means xmltree.DefaultMaxDepth; a
	// negative value means unlimited.
	MaxDepth int
}

// limit translates the option encoding into WalkTokens' (0 =
// unlimited).
func (o ReaderOptions) limit() int {
	switch {
	case o.MaxDepth == 0:
		return xmltree.DefaultMaxDepth
	case o.MaxDepth < 0:
		return 0
	}
	return o.MaxDepth
}

// Limit is the option encoding translated to WalkTokens' convention
// (0 = unlimited) — exported for the distributed coordinator, which
// ships the effective bound to workers so a remote parse enforces
// exactly the nesting limit the local check would.
func (o ReaderOptions) Limit() int { return o.limit() }

// clusterFold builds the per-tuple fold of one cluster — the exact
// fold checkCluster runs, as a yield callback for the cluster's token
// stream. The shared aborted flag mirrors Check's abort semantics
// across all multiplexed clusters.
func (cs *CheckerSet) clusterFold(cl *cluster, aborted *bool, onViolation func(i int, witness [2]tuples.Tuple) bool) func(tuples.Tuple) bool {
	type fdState struct {
		groups   map[string]tuples.Tuple // LHS key -> first tuple of the group (cloned)
		violated bool
	}
	states := make([]fdState, len(cl.fds))
	for li := range states {
		states[li].groups = make(map[string]tuples.Tuple)
	}
	remaining := len(cl.fds)
	var buf []byte
	return func(tup tuples.Tuple) bool {
		if *aborted {
			return false
		}
		for li, fi := range cl.fds {
			st := &states[li]
			if st.violated {
				continue
			}
			cf := &cs.fds[fi]
			key, ok := lhsKey(tup, cf.lhs, buf[:0])
			buf = key
			if !ok {
				continue // some LHS value is ⊥: the FD does not apply
			}
			first, seen := st.groups[string(key)]
			if !seen {
				// The stream reuses its scratch tuple; clone what we keep.
				st.groups[string(key)] = tup.Clone()
				continue
			}
			if sameRHS(first, tup, cf.rhs) {
				continue
			}
			st.violated = true
			st.groups = nil // dead once violated: free it mid-stream
			remaining--
			if onViolation != nil && !onViolation(fi, [2]tuples.Tuple{first, tup.Clone()}) {
				*aborted = true
				return false
			}
		}
		return remaining > 0
	}
}

// CheckReader is Check off an XML byte stream: it decides every FD of
// the set against the document arriving on r in a single token walk,
// without materializing the tree. Each violated FD is reported exactly
// once through onViolation (which may be nil) with its Σ index and the
// same first-conflict witness pair Check reports on the parsed tree;
// onViolation returning false stops all FD work. The walk reads the
// document to its end regardless — a verdict on malformed input would
// be meaningless — so the returned error is exactly what parsing the
// input would report: nil for well-formed input,
// *xmltree.MalformedError otherwise, *xmltree.DepthError for nesting
// past opts.MaxDepth.
func (cs *CheckerSet) CheckReader(r io.Reader, opts ReaderOptions, onViolation func(i int, witness [2]tuples.Tuple) bool) error {
	var streams []*tuples.TokenStream
	started := false
	aborted := false
	return xmltree.WalkTokens(r, opts.limit(), xmltree.TokenCallbacks{
		Open: func(label string, attrs []xmltree.Attr) error {
			if !started {
				started = true
				for ci := range cs.clusters {
					cl := &cs.clusters[ci]
					if cl.label != label {
						continue // vacuously satisfied on this document
					}
					fold := cs.clusterFold(cl, &aborted, onViolation)
					streams = append(streams, cl.pr.StartTokens(fold))
				}
			}
			if aborted {
				return nil
			}
			for _, ts := range streams {
				ts.Open(label, attrs)
			}
			return nil
		},
		Text: func(text []byte) error {
			if aborted {
				return nil
			}
			for _, ts := range streams {
				ts.Text(text)
			}
			return nil
		},
		Close: func(string) error {
			if aborted {
				return nil
			}
			for _, ts := range streams {
				ts.Close()
			}
			return nil
		},
	})
}

// SatisfiesAllReader checks T ⊨ Σ for the document arriving on r,
// stopping FD work at the first violation (the reader is still
// consumed to the end of the document to validate its structure). The
// verdict is identical to SatisfiesAll on the parsed tree.
func (cs *CheckerSet) SatisfiesAllReader(r io.Reader, opts ReaderOptions) (bool, error) {
	ok := true
	err := cs.CheckReader(r, opts, func(int, [2]tuples.Tuple) bool {
		ok = false
		return false
	})
	if err != nil {
		return false, err
	}
	return ok, nil
}

// ViolationsReader checks every FD against the document arriving on r
// and returns the violated ones with first-conflict witnesses, in Σ
// order — the same report Violations produces on the parsed tree (the
// vertex IDs minted for element paths differ across parses; see
// CanonicalReport). A valid document yields nil, nil.
func (cs *CheckerSet) ViolationsReader(r io.Reader, opts ReaderOptions) ([]Violated, error) {
	witnesses := make(map[int][2]tuples.Tuple)
	err := cs.CheckReader(r, opts, func(i int, w [2]tuples.Tuple) bool {
		witnesses[i] = w
		return true
	})
	if err != nil {
		return nil, err
	}
	return cs.report(witnesses), nil
}

// CanonicalReport renders a violation report in a form comparable
// across separate parses of the same document: vertex IDs (which are
// process-global and minted afresh by every parse or token walk) are
// renumbered by first appearance, strings are quoted, absent values
// print as ⊥. Two reports over the same Σ render equally iff they
// violate the same FDs with witness pairs that are identical up to the
// vertex renaming — the sense in which the reader path's reports are
// bit-identical to the tree path's.
func CanonicalReport(vs []Violated) string {
	var b strings.Builder
	renum := make(map[xmltree.NodeID]int)
	render := func(t tuples.Tuple, p dtd.Path) string {
		v, ok := t.Get(p)
		if !ok {
			return "⊥"
		}
		if v.IsNode() {
			id, seen := renum[v.Node()]
			if !seen {
				id = len(renum)
				renum[v.Node()] = id
			}
			return fmt.Sprintf("#%d", id)
		}
		return fmt.Sprintf("%q", v.Str())
	}
	for _, viol := range vs {
		fmt.Fprintf(&b, "%s\n", viol.FD)
		for _, p := range viol.FD.Paths() {
			fmt.Fprintf(&b, "  %-30s %s | %s\n", p, render(viol.Witness[0], p), render(viol.Witness[1], p))
		}
	}
	return b.String()
}
