package xfd_test

// Tests for the reader-driven checker: CheckReader and friends must
// agree with the tree path (Violations / SatisfiesAll) on verdicts,
// violation sets and witness reports — compared through
// CanonicalReport, which renames the process-global vertex IDs that
// necessarily differ between a parse and a token walk — plus typed
// error behavior on malformed and over-deep input.

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"xmlnorm/internal/gen"
	"xmlnorm/internal/tuples"
	"xmlnorm/internal/xfd"
	"xmlnorm/internal/xmltree"
)

// TestCheckReaderDifferential: ≥1000 random (document, Σ) instances;
// the streaming checker must reproduce the tree checker's verdict and
// canonical witness report exactly.
func TestCheckReaderDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20020609))
	instances := 0
	violating := 0
	for instances < 1000 {
		d := gen.RandomSimpleDTD(rng)
		doc, err := gen.Document(d, rng, 3, 2)
		if err != nil {
			t.Fatalf("gen.Document: %v", err)
		}
		ps, err := d.Paths()
		if err != nil {
			t.Fatalf("Paths: %v", err)
		}
		sigma := make([]xfd.FD, 0, 3)
		for len(sigma) < cap(sigma) {
			lhs := []string{ps[rng.Intn(len(ps))].String()}
			if rng.Intn(2) == 0 {
				lhs = append(lhs, ps[rng.Intn(len(ps))].String())
			}
			rhs := []string{ps[rng.Intn(len(ps))].String()}
			sigma = append(sigma, xfd.New(lhs, rhs))
		}
		instances++
		text := doc.String()

		cs, err := xfd.NewCheckerSetFor(sigma)
		if err != nil {
			t.Fatalf("NewCheckerSetFor: %v", err)
		}
		tree, err := xmltree.ParseString(text)
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		want := cs.Violations(tree)
		got, err := cs.ViolationsReader(strings.NewReader(text), xfd.ReaderOptions{})
		if err != nil {
			t.Fatalf("ViolationsReader: %v", err)
		}
		if len(want) > 0 {
			violating++
		}
		wantR, gotR := xfd.CanonicalReport(want), xfd.CanonicalReport(got)
		if wantR != gotR {
			t.Fatalf("reports differ for Σ=%v\ntree:\n%s\nreader:\n%s\ndocument:\n%s",
				sigma, wantR, gotR, text)
		}
		sat, err := cs.SatisfiesAllReader(strings.NewReader(text), xfd.ReaderOptions{})
		if err != nil {
			t.Fatalf("SatisfiesAllReader: %v", err)
		}
		if sat != cs.SatisfiesAll(tree) {
			t.Fatalf("verdict mismatch for Σ=%v on\n%s", sigma, text)
		}
	}
	if violating < 50 {
		t.Fatalf("only %d/%d instances violated Σ — the suite is not exercising witnesses", violating, instances)
	}
	t.Logf("%d instances, %d violating", instances, violating)
}

// TestCheckReaderTypedErrors: malformed and over-deep input fail with
// the typed errors, matching Parse's messages for malformed input.
func TestCheckReaderTypedErrors(t *testing.T) {
	cs, err := xfd.NewCheckerSetFor([]xfd.FD{xfd.MustParse("r.c.@k -> r.c.@v")})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{"<r><c>", "<r/><r/>", "", "junk"} {
		_, rerr := cs.ViolationsReader(strings.NewReader(src), xfd.ReaderOptions{})
		var me *xmltree.MalformedError
		if !errors.As(rerr, &me) {
			t.Fatalf("%q: want MalformedError, got %v", src, rerr)
		}
		_, perr := xmltree.ParseString(src)
		if perr == nil || perr.Error() != rerr.Error() {
			t.Fatalf("%q: reader error %q, Parse error %q", src, rerr, perr)
		}
	}

	deep := strings.Repeat("<r>", 40) + strings.Repeat("</r>", 40)
	_, rerr := cs.ViolationsReader(strings.NewReader(deep), xfd.ReaderOptions{MaxDepth: 10})
	var de *xmltree.DepthError
	if !errors.As(rerr, &de) {
		t.Fatalf("want DepthError, got %v", rerr)
	}
	if de.Depth != 11 || de.Limit != 10 {
		t.Fatalf("DepthError = %+v", de)
	}
	// Negative MaxDepth means unlimited.
	if _, err := cs.ViolationsReader(strings.NewReader(deep), xfd.ReaderOptions{MaxDepth: -1}); err != nil {
		t.Fatalf("unlimited depth: %v", err)
	}
}

// TestCheckReaderAbortStillValidates: aborting FD work via onViolation
// must not cut the structural validation short.
func TestCheckReaderAbortStillValidates(t *testing.T) {
	cs, err := xfd.NewCheckerSetFor([]xfd.FD{xfd.MustParse("r.c.@k -> r.c.@v")})
	if err != nil {
		t.Fatal(err)
	}
	// Violation appears early; the trailing garbage must still fail
	// the walk.
	src := "<r><c k=\"1\" v=\"a\"/><c k=\"1\" v=\"b\"/><c>text<q/></c></r>"
	calls := 0
	werr := cs.CheckReader(strings.NewReader(src), xfd.ReaderOptions{}, func(int, [2]tuples.Tuple) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("onViolation ran %d times, want 1", calls)
	}
	var me *xmltree.MalformedError
	if !errors.As(werr, &me) {
		t.Fatalf("want MalformedError from the mixed content after the abort, got %v", werr)
	}
}

// TestCheckReaderEmptySigma: with no FDs the reader entry points are
// pure structural validation.
func TestCheckReaderEmptySigma(t *testing.T) {
	cs, err := xfd.NewCheckerSetFor(nil)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := cs.ViolationsReader(strings.NewReader("<r><c/></r>"), xfd.ReaderOptions{})
	if err != nil || vs != nil {
		t.Fatalf("valid doc: got %v, %v", vs, err)
	}
	if _, err := cs.ViolationsReader(strings.NewReader("<r>"), xfd.ReaderOptions{}); err == nil {
		t.Fatal("malformed doc with empty Σ: want error")
	}
}

// TestCheckReaderWitnessDeterminism: the first-conflict witness off
// the reader matches the tree checker's, repeatedly.
func TestCheckReaderWitnessDeterminism(t *testing.T) {
	sigma := []xfd.FD{xfd.MustParse("r.c.@k -> r.c.d.S")}
	cs, err := xfd.NewCheckerSetFor(sigma)
	if err != nil {
		t.Fatal(err)
	}
	src := `<r><c k="1"><d>x</d></c><c k="2"><d>y</d></c><c k="1"><d>z</d></c><c k="1"><d>w</d></c></r>`
	tree := xmltree.MustParseString(src)
	want := xfd.CanonicalReport(cs.Violations(tree))
	if !strings.Contains(want, `"x" | "z"`) {
		t.Fatalf("tree witness not the first conflict:\n%s", want)
	}
	for i := 0; i < 3; i++ {
		got, err := cs.ViolationsReader(strings.NewReader(src), xfd.ReaderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if r := xfd.CanonicalReport(got); r != want {
			t.Fatalf("run %d: report\n%s\nwant\n%s", i, r, want)
		}
	}
}
