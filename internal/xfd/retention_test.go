package xfd

// Regression tests for the violated-groups drop: once an FD is
// violated, its LHS group map can never influence a verdict again
// (violation is absorbing under Merge), so every fold path nils it
// out. These tests pin that contract white-box — the map must be nil,
// not merely unread — and bound the live heap of long-lived states
// folded from violating documents, so a sweep that holds many states
// stops retaining dead group maps.

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"xmlnorm/internal/xmltree"
)

// violatingDoc builds <r> with n "c" children whose @k are distinct
// except for the last pair, so the fold accumulates n-2 groups before
// the violation lands on the final tuple.
func violatingDoc(t *testing.T, n int) *xmltree.Tree {
	t.Helper()
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < n-1; i++ {
		fmt.Fprintf(&b, "<c k=\"k%d\"/>", i)
	}
	fmt.Fprintf(&b, "<c k=\"k%d\"/>", n-2)
	b.WriteString("</r>")
	doc, err := xmltree.ParseString(b.String())
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestViolatedGroupsDropped asserts the group map is nil — dropped,
// not just ignored — after a violation lands through Fold, through
// Merge, and through UnmarshalFoldState.
func TestViolatedGroupsDropped(t *testing.T) {
	// Two FDs so the walk survives the first FD's violation: the
	// second never conflicts (its RHS is its LHS) and keeps streaming.
	sigma := []FD{
		New([]string{"r.c.@k"}, []string{"r.c"}),
		New([]string{"r.c"}, []string{"r.c"}),
	}
	cs, err := NewCheckerSetFor(sigma)
	if err != nil {
		t.Fatal(err)
	}
	doc := violatingDoc(t, 64)

	st := cs.NewFoldState()
	st.Fold(doc)
	if !st.fds[0].violated || st.fds[0].groups != nil {
		t.Fatalf("Fold: violated FD retains groups map (violated=%v, groups=%v)",
			st.fds[0].violated, st.fds[0].groups != nil)
	}
	if st.fds[1].violated || st.fds[1].groups == nil {
		t.Fatalf("Fold: satisfied FD must keep its groups")
	}

	// Merge-detected conflict: each half is conflict-free, but "dup"
	// maps to a different element position in each, so the merge sees
	// the rep mismatch and must drop the map.
	half := func(s string) *FoldState {
		d, err := xmltree.ParseString(s)
		if err != nil {
			t.Fatal(err)
		}
		fs := cs.NewFoldState()
		fs.Fold(d)
		return fs
	}
	a := half("<r><c k=\"dup\"/></r>")
	b := half("<r><c k=\"other\"/><c k=\"dup\"/></r>")
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !a.fds[0].violated || a.fds[0].groups != nil {
		t.Fatalf("Merge: violated FD retains groups map")
	}

	// A violated flag absorbing an incoming state drops the dst map too.
	c := half("<r><c k=\"x\"/></r>")
	if err := c.Merge(a); err != nil {
		t.Fatal(err)
	}
	if !c.fds[0].violated || c.fds[0].groups != nil {
		t.Fatalf("Merge: absorbing a violated state retains groups map")
	}

	// And the wire round trip keeps it dropped.
	blob, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := cs.UnmarshalFoldState(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !back.fds[0].violated || back.fds[0].groups != nil {
		t.Fatalf("UnmarshalFoldState: violated FD retains groups map")
	}
}

// TestViolatedStatesRetainLittle is the retention regression: holding
// many FoldStates folded from documents that accumulate thousands of
// groups BEFORE violating must cost almost nothing, because the
// violation drops the maps. If the nil-out regressed, the 16 states
// below would retain ~16×4000 group entries (several MB); the bound
// gives an order of magnitude of headroom over the dropped cost.
func TestViolatedStatesRetainLittle(t *testing.T) {
	sigma := []FD{
		New([]string{"r.c.@k"}, []string{"r.c"}),
		New([]string{"r.c"}, []string{"r.c"}),
	}
	cs, err := NewCheckerSetFor(sigma)
	if err != nil {
		t.Fatal(err)
	}
	doc := violatingDoc(t, 4000)

	liveHeap := func() uint64 {
		runtime.GC()
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return m.HeapAlloc
	}
	states := make([]*FoldState, 16)
	base := liveHeap()
	for i := range states {
		states[i] = cs.NewFoldState()
		states[i].Fold(doc)
		// Drop the satisfied FD's map too: this test measures what a
		// violated fold retains, and FD 1 legitimately keeps ~4000
		// live entries per state.
		states[i].fds[1].groups = nil
	}
	after := liveHeap()
	var grown uint64
	if after > base { // GC churn can shrink the heap below base
		grown = after - base
	}
	runtime.KeepAlive(states)
	for i := range states {
		if !states[i].fds[0].violated || states[i].fds[0].groups != nil {
			t.Fatalf("state %d retains its violated groups map", i)
		}
	}
	// 16 retained maps of ~4000 entries would be well past 4 MB.
	if grown > 4<<20 {
		t.Fatalf("16 violated fold states retain %d bytes of heap, want (almost) none", grown)
	}
}
