// Package xfd implements XML functional dependencies (Section 4 of
// Arenas & Libkin, PODS 2002): expressions S1 → S2 over paths of a DTD,
// whose semantics is defined on the tree-tuple representation with the
// Atzeni–Morfuni null semantics — a tree T satisfies S1 → S2 if any two
// maximal tuples that agree on S1 with non-null values also agree on S2
// (where ⊥ = ⊥ counts as agreement on the right-hand side).
//
// Checking an entire Σ is one clustered fold (CheckerSet) with several
// frontends — whole tree (Violations), sharded tree
// (ViolationsSharded), io.Reader stream (CheckReader), and mergeable
// per-fragment fold states (FoldState) — all pinned bit-identical to
// each other by differential suites; ARCHITECTURE.md (layers 3 and 3b)
// at the repo root maps them out.
package xfd

import (
	"fmt"
	"sort"
	"strings"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/paths"
	"xmlnorm/internal/tuples"
	"xmlnorm/internal/xmltree"
)

// FD is a functional dependency S1 → S2 over the paths of a DTD. The
// parsed LHS/RHS path slices are the source of truth; Resolve populates
// the interned SetLHS/SetRHS bitsets against a path universe so that
// hot consumers (implication, the engine cache, XNF search) can compare
// sides without re-serializing paths.
type FD struct {
	LHS []dtd.Path
	RHS []dtd.Path

	// SetLHS and SetRHS are the sides as bitsets over the universe the
	// FD was last Resolved against; nil until Resolve is called.
	SetLHS paths.Set
	SetRHS paths.Set

	resolvedIn *paths.Universe
}

// Resolve interns both sides against the universe, populating
// SetLHS/SetRHS. It fails if some path of the FD is not in the
// universe; the FD is left unresolved in that case.
func (f *FD) Resolve(u *paths.Universe) error {
	lhs := u.NewSet()
	for _, p := range f.LHS {
		id, ok := u.Lookup(p)
		if !ok {
			return fmt.Errorf("xfd: %s: %q is not in the path universe", f, p)
		}
		lhs.Add(id)
	}
	rhs := u.NewSet()
	for _, p := range f.RHS {
		id, ok := u.Lookup(p)
		if !ok {
			return fmt.Errorf("xfd: %s: %q is not in the path universe", f, p)
		}
		rhs.Add(id)
	}
	f.SetLHS, f.SetRHS, f.resolvedIn = lhs, rhs, u
	return nil
}

// ResolvedIn returns the universe the FD's bitsets refer to, or nil if
// Resolve has not been called.
func (f FD) ResolvedIn() *paths.Universe { return f.resolvedIn }

// AppendKey appends a canonical binary encoding of the FD over the
// universe (LHS set words, a separator, RHS set words) to dst. It
// reuses the resolved bitsets when they refer to u and resolves on the
// fly otherwise; ok is false when some path is not in the universe (dst
// is returned unchanged then). Two FDs append equal keys iff their
// sides are equal as path sets.
func (f FD) AppendKey(u *paths.Universe, dst []byte) (out []byte, ok bool) {
	lhs, rhs := f.SetLHS, f.SetRHS
	if f.resolvedIn != u {
		var fresh FD
		fresh.LHS, fresh.RHS = f.LHS, f.RHS
		if err := fresh.Resolve(u); err != nil {
			return dst, false
		}
		lhs, rhs = fresh.SetLHS, fresh.SetRHS
	}
	dst = lhs.AppendWords(dst)
	dst = append(dst, 0xfe)
	dst = rhs.AppendWords(dst)
	return dst, true
}

// New builds an FD from dotted path strings, panicking on syntax errors;
// for tests and literals. Use Parse for untrusted input.
func New(lhs []string, rhs []string) FD {
	fd, err := fromStrings(lhs, rhs)
	if err != nil {
		panic(err)
	}
	return fd
}

func fromStrings(lhs, rhs []string) (FD, error) {
	var fd FD
	for _, s := range lhs {
		p, err := dtd.ParsePath(s)
		if err != nil {
			return FD{}, err
		}
		fd.LHS = append(fd.LHS, p)
	}
	for _, s := range rhs {
		p, err := dtd.ParsePath(s)
		if err != nil {
			return FD{}, err
		}
		fd.RHS = append(fd.RHS, p)
	}
	return fd, nil
}

// Parse reads "p1, p2 -> q1, q2" notation.
func Parse(s string) (FD, error) {
	parts := strings.Split(s, "->")
	if len(parts) != 2 {
		return FD{}, fmt.Errorf("xfd: %q: want exactly one \"->\"", s)
	}
	lhs, err := splitPaths(parts[0])
	if err != nil {
		return FD{}, fmt.Errorf("xfd: %q: %v", s, err)
	}
	rhs, err := splitPaths(parts[1])
	if err != nil {
		return FD{}, fmt.Errorf("xfd: %q: %v", s, err)
	}
	if len(lhs) == 0 || len(rhs) == 0 {
		return FD{}, fmt.Errorf("xfd: %q: both sides must be non-empty", s)
	}
	return fromStrings(lhs, rhs)
}

// MustParse is Parse that panics on error.
func MustParse(s string) FD {
	fd, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return fd
}

func splitPaths(s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty path in %q", s)
		}
		out = append(out, part)
	}
	return out, nil
}

// String renders the FD in the parseable "p1, p2 -> q" notation.
func (f FD) String() string {
	var b strings.Builder
	for i, p := range f.LHS {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteString(" -> ")
	for i, p := range f.RHS {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	return b.String()
}

// Validate checks that all paths of the FD are paths of the DTD.
func (f FD) Validate(d *dtd.DTD) error {
	if len(f.LHS) == 0 || len(f.RHS) == 0 {
		return fmt.Errorf("xfd: %s: sides must be non-empty", f)
	}
	for _, p := range append(append([]dtd.Path{}, f.LHS...), f.RHS...) {
		if !d.IsPath(p) {
			return fmt.Errorf("xfd: %s: %q is not a path of the DTD", f, p)
		}
	}
	return nil
}

// Paths returns LHS ∪ RHS without duplicates, in order of appearance.
func (f FD) Paths() []dtd.Path {
	seen := map[string]bool{}
	var out []dtd.Path
	for _, p := range append(append([]dtd.Path{}, f.LHS...), f.RHS...) {
		if !seen[p.String()] {
			seen[p.String()] = true
			out = append(out, p)
		}
	}
	return out
}

// Clone returns a deep copy, including any resolved bitsets.
func (f FD) Clone() FD {
	c := FD{LHS: make([]dtd.Path, len(f.LHS)), RHS: make([]dtd.Path, len(f.RHS))}
	for i, p := range f.LHS {
		c.LHS[i] = p.Clone()
	}
	for i, p := range f.RHS {
		c.RHS[i] = p.Clone()
	}
	c.SetLHS, c.SetRHS, c.resolvedIn = f.SetLHS.Clone(), f.SetRHS.Clone(), f.resolvedIn
	return c
}

// Equal reports whether two FDs have the same sides as sets. FDs
// resolved against the same universe compare by bitset.
func (f FD) Equal(o FD) bool {
	if f.resolvedIn != nil && f.resolvedIn == o.resolvedIn {
		return f.SetLHS.Equal(o.SetLHS) && f.SetRHS.Equal(o.SetRHS)
	}
	return samePathSet(f.LHS, o.LHS) && samePathSet(f.RHS, o.RHS)
}

// Compare orders FDs canonically: by the sorted, deduplicated string
// renderings of their left-hand sides, then of their right-hand sides
// (lexicographic on the path lists). It is a total order on FDs up to
// Equal, independent of the order paths were listed in, so sorting any
// FD slice with it yields one byte-stable rendering per FD set —
// covers, key reports and goldens all rely on that.
func Compare(a, b FD) int {
	if c := comparePathSets(a.LHS, b.LHS); c != 0 {
		return c
	}
	return comparePathSets(a.RHS, b.RHS)
}

func comparePathSets(a, b []dtd.Path) int {
	as, bs := pathStrings(a), pathStrings(b)
	for i := 0; i < len(as) && i < len(bs); i++ {
		if as[i] != bs[i] {
			if as[i] < bs[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(as) < len(bs):
		return -1
	case len(as) > len(bs):
		return 1
	}
	return 0
}

func samePathSet(a, b []dtd.Path) bool {
	as := pathStrings(a)
	bs := pathStrings(b)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func pathStrings(ps []dtd.Path) []string {
	out := make([]string, 0, len(ps))
	seen := map[string]bool{}
	for _, p := range ps {
		s := p.String()
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// SingleRHS splits the FD into one FD per right-hand-side path
// (implication treats S → {p, q} as {S → p, S → q}). If the FD is
// resolved, each single inherits the resolution (the LHS bitset is
// shared, read-only).
func (f FD) SingleRHS() []FD {
	out := make([]FD, 0, len(f.RHS))
	for _, p := range f.RHS {
		single := FD{LHS: f.LHS, RHS: []dtd.Path{p}}
		if f.resolvedIn != nil {
			if id, ok := f.resolvedIn.Lookup(p); ok {
				single.SetLHS = f.SetLHS
				single.SetRHS = f.resolvedIn.SetOf(id)
				single.resolvedIn = f.resolvedIn
			}
		}
		out = append(out, single)
	}
	return out
}

// Checker is a compiled satisfaction check for one FD over a path
// universe: a projection plan (shared across trees) plus the FD's sides
// pre-resolved to IDs. Build once, reuse across trees — a Checker is
// read-only after construction and safe for concurrent use.
type Checker struct {
	fd  FD
	pr  *tuples.Projector
	lhs []paths.ID
	rhs []paths.ID
}

// NewChecker compiles the FD against the universe. Every path of the FD
// must be interned in the universe.
func NewChecker(u *paths.Universe, f FD) (*Checker, error) {
	pr, err := tuples.NewProjector(u, f.Paths())
	if err != nil {
		return nil, fmt.Errorf("xfd: %s: %v", f, err)
	}
	c := &Checker{fd: f, pr: pr}
	for _, p := range f.LHS {
		c.lhs = append(c.lhs, u.MustLookup(p))
	}
	for _, p := range f.RHS {
		c.rhs = append(c.rhs, u.MustLookup(p))
	}
	return c, nil
}

// FD returns the compiled dependency.
func (c *Checker) FD() FD { return c.fd }

// Satisfies checks T ⊨ f.
func (c *Checker) Satisfies(t *xmltree.Tree) bool {
	_, bad := c.Violation(t)
	return !bad
}

// Violation returns a witness pair of projected tuples violating the
// FD, if any. The projections are streamed (tuples.Projector.Stream)
// and folded into a map keyed by LHS values — within a group all RHS
// projections must agree — so the check never materializes the tuple
// product and stops at the first conflict.
func (c *Checker) Violation(t *xmltree.Tree) (witness [2]tuples.Tuple, bad bool) {
	groups := make(map[string]tuples.Tuple)
	var buf []byte
	c.pr.Stream(t, func(tup tuples.Tuple) bool {
		key, ok := lhsKey(tup, c.lhs, buf[:0])
		buf = key
		if !ok {
			return true // some LHS value is ⊥: the FD does not apply
		}
		first, seen := groups[string(key)]
		if !seen {
			// The stream reuses its scratch tuple; clone what we keep.
			groups[string(key)] = tup.Clone()
			return true
		}
		if sameRHS(first, tup, c.rhs) {
			return true
		}
		witness, bad = [2]tuples.Tuple{first, tup.Clone()}, true
		return false
	})
	return witness, bad
}

// Satisfies checks T ⊨ f: for every pair of maximal tuples t1, t2 of T,
// if t1.LHS = t2.LHS with all values non-null, then t1.RHS = t2.RHS
// (null = null counts as equal). The check enumerates projections of the
// maximal tuples onto the FD's paths only, so it does not materialize
// the full tuple set. Callers checking many trees against the same FD
// should compile a Checker once instead.
func Satisfies(t *xmltree.Tree, f FD) bool {
	_, ok := Violation(t, f)
	return !ok
}

// Violation returns a witness pair of projected tuples violating f, if
// any.
func Violation(t *xmltree.Tree, f FD) ([2]tuples.Tuple, bool) {
	c, err := NewChecker(paths.ForQuery(f.Paths()), f)
	if err != nil {
		return [2]tuples.Tuple{}, false // unreachable: query universes intern all f's paths
	}
	return c.Violation(t)
}

// SatisfiesAll checks T ⊨ Σ in one streaming walk of the document
// (see CheckerSet). Callers checking many trees against the same Σ
// should compile a CheckerSet once instead.
func SatisfiesAll(t *xmltree.Tree, sigma []FD) bool {
	if len(sigma) == 0 {
		return true
	}
	cs, err := NewCheckerSet(sigmaUniverse(sigma), sigma)
	if err != nil {
		return true // unreachable: query universes intern all of Σ's paths
	}
	return cs.SatisfiesAll(t)
}

// sigmaUniverse interns the paths of a whole FD set into one query
// universe.
func sigmaUniverse(sigma []FD) *paths.Universe {
	var ps []dtd.Path
	for _, f := range sigma {
		ps = append(ps, f.Paths()...)
	}
	return paths.ForQuery(ps)
}

// NewCheckerSetFor compiles sigma against a fresh query universe built
// from its own paths — the one-shot convenience constructor. Callers
// that already hold an interned universe (e.g. from paths.New on the
// DTD) should use NewCheckerSet to share it.
func NewCheckerSetFor(sigma []FD) (*CheckerSet, error) {
	return NewCheckerSet(sigmaUniverse(sigma), sigma)
}

// lhsKey appends an unambiguous binary encoding of the tuple's LHS
// values to dst; ok is false when some LHS value is ⊥.
func lhsKey(t tuples.Tuple, lhs []paths.ID, dst []byte) (key []byte, ok bool) {
	for _, id := range lhs {
		v, ok := t.GetID(id)
		if !ok {
			return dst, false
		}
		if v.IsNode() {
			dst = append(dst, 1)
			dst = appendUvarint(dst, uint64(v.Node()))
		} else {
			s := v.Str()
			dst = append(dst, 2)
			dst = appendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		}
	}
	return dst, true
}

func appendUvarint(dst []byte, x uint64) []byte {
	for x >= 0x80 {
		dst = append(dst, byte(x)|0x80)
		x >>= 7
	}
	return append(dst, byte(x))
}

func sameRHS(a, b tuples.Tuple, rhs []paths.ID) bool {
	for _, id := range rhs {
		av, aok := a.GetID(id)
		bv, bok := b.GetID(id)
		if aok != bok {
			return false
		}
		if aok && !av.Equal(bv) {
			return false
		}
	}
	return true
}

// ParseSet reads one FD per line, ignoring blank lines and lines
// starting with '#'.
func ParseSet(s string) ([]FD, error) {
	var out []FD
	for i, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fd, err := Parse(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", i+1, err)
		}
		out = append(out, fd)
	}
	return out, nil
}

// FormatSet renders a set of FDs, one per line.
func FormatSet(sigma []FD) string {
	var b strings.Builder
	for _, f := range sigma {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Violated pairs an FD with a witness pair of tuple projections that
// violate it.
type Violated struct {
	FD      FD
	Witness [2]tuples.Tuple
}

// ViolationReport checks every FD of Σ against the document in one
// streaming walk (see CheckerSet) and returns the violated ones with
// witnesses, in Σ order. A valid document yields an empty report.
func ViolationReport(t *xmltree.Tree, sigma []FD) []Violated {
	if len(sigma) == 0 {
		return nil
	}
	cs, err := NewCheckerSet(sigmaUniverse(sigma), sigma)
	if err != nil {
		return nil // unreachable: query universes intern all of Σ's paths
	}
	return cs.Violations(t)
}
