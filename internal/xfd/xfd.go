// Package xfd implements XML functional dependencies (Section 4 of
// Arenas & Libkin, PODS 2002): expressions S1 → S2 over paths of a DTD,
// whose semantics is defined on the tree-tuple representation with the
// Atzeni–Morfuni null semantics — a tree T satisfies S1 → S2 if any two
// maximal tuples that agree on S1 with non-null values also agree on S2
// (where ⊥ = ⊥ counts as agreement on the right-hand side).
package xfd

import (
	"fmt"
	"sort"
	"strings"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/tuples"
	"xmlnorm/internal/xmltree"
)

// FD is a functional dependency S1 → S2 over the paths of a DTD.
type FD struct {
	LHS []dtd.Path
	RHS []dtd.Path
}

// New builds an FD from dotted path strings, panicking on syntax errors;
// for tests and literals. Use Parse for untrusted input.
func New(lhs []string, rhs []string) FD {
	fd, err := fromStrings(lhs, rhs)
	if err != nil {
		panic(err)
	}
	return fd
}

func fromStrings(lhs, rhs []string) (FD, error) {
	var fd FD
	for _, s := range lhs {
		p, err := dtd.ParsePath(s)
		if err != nil {
			return FD{}, err
		}
		fd.LHS = append(fd.LHS, p)
	}
	for _, s := range rhs {
		p, err := dtd.ParsePath(s)
		if err != nil {
			return FD{}, err
		}
		fd.RHS = append(fd.RHS, p)
	}
	return fd, nil
}

// Parse reads "p1, p2 -> q1, q2" notation.
func Parse(s string) (FD, error) {
	parts := strings.Split(s, "->")
	if len(parts) != 2 {
		return FD{}, fmt.Errorf("xfd: %q: want exactly one \"->\"", s)
	}
	lhs, err := splitPaths(parts[0])
	if err != nil {
		return FD{}, fmt.Errorf("xfd: %q: %v", s, err)
	}
	rhs, err := splitPaths(parts[1])
	if err != nil {
		return FD{}, fmt.Errorf("xfd: %q: %v", s, err)
	}
	if len(lhs) == 0 || len(rhs) == 0 {
		return FD{}, fmt.Errorf("xfd: %q: both sides must be non-empty", s)
	}
	return fromStrings(lhs, rhs)
}

// MustParse is Parse that panics on error.
func MustParse(s string) FD {
	fd, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return fd
}

func splitPaths(s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty path in %q", s)
		}
		out = append(out, part)
	}
	return out, nil
}

// String renders the FD in the parseable "p1, p2 -> q" notation.
func (f FD) String() string {
	var b strings.Builder
	for i, p := range f.LHS {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteString(" -> ")
	for i, p := range f.RHS {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	return b.String()
}

// Validate checks that all paths of the FD are paths of the DTD.
func (f FD) Validate(d *dtd.DTD) error {
	if len(f.LHS) == 0 || len(f.RHS) == 0 {
		return fmt.Errorf("xfd: %s: sides must be non-empty", f)
	}
	for _, p := range append(append([]dtd.Path{}, f.LHS...), f.RHS...) {
		if !d.IsPath(p) {
			return fmt.Errorf("xfd: %s: %q is not a path of the DTD", f, p)
		}
	}
	return nil
}

// Paths returns LHS ∪ RHS without duplicates, in order of appearance.
func (f FD) Paths() []dtd.Path {
	seen := map[string]bool{}
	var out []dtd.Path
	for _, p := range append(append([]dtd.Path{}, f.LHS...), f.RHS...) {
		if !seen[p.String()] {
			seen[p.String()] = true
			out = append(out, p)
		}
	}
	return out
}

// Clone returns a deep copy.
func (f FD) Clone() FD {
	c := FD{LHS: make([]dtd.Path, len(f.LHS)), RHS: make([]dtd.Path, len(f.RHS))}
	for i, p := range f.LHS {
		c.LHS[i] = p.Clone()
	}
	for i, p := range f.RHS {
		c.RHS[i] = p.Clone()
	}
	return c
}

// Equal reports whether two FDs have the same sides as sets.
func (f FD) Equal(o FD) bool {
	return samePathSet(f.LHS, o.LHS) && samePathSet(f.RHS, o.RHS)
}

func samePathSet(a, b []dtd.Path) bool {
	as := pathStrings(a)
	bs := pathStrings(b)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func pathStrings(ps []dtd.Path) []string {
	out := make([]string, 0, len(ps))
	seen := map[string]bool{}
	for _, p := range ps {
		s := p.String()
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// SingleRHS splits the FD into one FD per right-hand-side path
// (implication treats S → {p, q} as {S → p, S → q}).
func (f FD) SingleRHS() []FD {
	out := make([]FD, 0, len(f.RHS))
	for _, p := range f.RHS {
		out = append(out, FD{LHS: f.LHS, RHS: []dtd.Path{p}})
	}
	return out
}

// Satisfies checks T ⊨ f: for every pair of maximal tuples t1, t2 of T,
// if t1.LHS = t2.LHS with all values non-null, then t1.RHS = t2.RHS
// (null = null counts as equal). The check enumerates projections of the
// maximal tuples onto the FD's paths only, so it does not materialize
// the full tuple set.
func Satisfies(t *xmltree.Tree, f FD) bool {
	_, ok := Violation(t, f)
	return !ok
}

// Violation returns a witness pair of projected tuples violating f, if
// any.
func Violation(t *xmltree.Tree, f FD) ([2]tuples.Tuple, bool) {
	proj := tuples.Projections(t, f.Paths())
	// Group by LHS values; within a group all RHS projections must agree.
	groups := map[string]tuples.Tuple{}
	for _, tup := range proj {
		key, ok := lhsKey(tup, f.LHS)
		if !ok {
			continue // some LHS value is ⊥: the FD does not apply
		}
		first, seen := groups[key]
		if !seen {
			groups[key] = tup
			continue
		}
		if !sameRHS(first, tup, f.RHS) {
			return [2]tuples.Tuple{first, tup}, true
		}
	}
	return [2]tuples.Tuple{}, false
}

// SatisfiesAll checks T ⊨ Σ.
func SatisfiesAll(t *xmltree.Tree, sigma []FD) bool {
	for _, f := range sigma {
		if !Satisfies(t, f) {
			return false
		}
	}
	return true
}

func lhsKey(t tuples.Tuple, lhs []dtd.Path) (string, bool) {
	var b strings.Builder
	for _, p := range lhs {
		v, ok := t.Get(p)
		if !ok {
			return "", false
		}
		b.WriteString(v.String())
		b.WriteByte('|')
	}
	return b.String(), true
}

func sameRHS(a, b tuples.Tuple, rhs []dtd.Path) bool {
	for _, p := range rhs {
		av, aok := a.Get(p)
		bv, bok := b.Get(p)
		if aok != bok {
			return false
		}
		if aok && !av.Equal(bv) {
			return false
		}
	}
	return true
}

// ParseSet reads one FD per line, ignoring blank lines and lines
// starting with '#'.
func ParseSet(s string) ([]FD, error) {
	var out []FD
	for i, line := range strings.Split(s, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fd, err := Parse(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", i+1, err)
		}
		out = append(out, fd)
	}
	return out, nil
}

// FormatSet renders a set of FDs, one per line.
func FormatSet(sigma []FD) string {
	var b strings.Builder
	for _, f := range sigma {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Violated pairs an FD with a witness pair of tuple projections that
// violate it.
type Violated struct {
	FD      FD
	Witness [2]tuples.Tuple
}

// ViolationReport checks every FD of Σ against the document and
// returns the violated ones with witnesses. A valid document yields an
// empty report.
func ViolationReport(t *xmltree.Tree, sigma []FD) []Violated {
	var out []Violated
	for _, f := range sigma {
		if pair, bad := Violation(t, f); bad {
			out = append(out, Violated{FD: f, Witness: pair})
		}
	}
	return out
}
