package xfd

import (
	"os"
	"path/filepath"
	"testing"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/xmltree"
)

func load(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("../../testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// The FDs of Example 4.1.
const (
	fd1 = "courses.course.@cno -> courses.course"
	fd2 = "courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student"
	fd3 = "courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name.S"
)

func TestParseAndString(t *testing.T) {
	f := MustParse(fd2)
	if len(f.LHS) != 2 || len(f.RHS) != 1 {
		t.Fatalf("parsed %v", f)
	}
	if f.String() != fd2 {
		t.Errorf("String = %q, want %q", f.String(), fd2)
	}
	again := MustParse(f.String())
	if !f.Equal(again) {
		t.Error("round trip changed the FD")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "a.b", "a -> b -> c", "-> a", "a ->", "a, -> b", "a -> b,",
		"a..b -> c", "@x -> y",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
	if _, err := Parse("a.@x.b -> c"); err == nil {
		t.Error("attribute step in the middle should fail")
	}
}

func TestValidate(t *testing.T) {
	d := dtd.MustParse(load(t, "courses.dtd"))
	for _, s := range []string{fd1, fd2, fd3} {
		if err := MustParse(s).Validate(d); err != nil {
			t.Errorf("Validate(%q): %v", s, err)
		}
	}
	if err := MustParse("courses.zzz -> courses").Validate(d); err == nil {
		t.Error("invalid path accepted")
	}
	if err := (FD{}).Validate(d); err == nil {
		t.Error("empty FD accepted")
	}
}

func TestEqualAndClone(t *testing.T) {
	a := MustParse("x.a, x.b -> x.c")
	b := MustParse("x.b, x.a -> x.c") // sets, order irrelevant
	if !a.Equal(b) {
		t.Error("FD equality should ignore order")
	}
	c := a.Clone()
	if !a.Equal(c) {
		t.Error("clone differs")
	}
	c.LHS[0][0] = "zzz"
	if a.LHS[0][0] == "zzz" {
		t.Error("clone shares path storage")
	}
	if a.Equal(MustParse("x.a -> x.c")) {
		t.Error("different FDs reported equal")
	}
}

func TestPathsAndSingleRHS(t *testing.T) {
	f := MustParse("x.a, x.b -> x.b, x.c")
	ps := f.Paths()
	if len(ps) != 3 { // x.b deduplicated
		t.Errorf("Paths = %v", ps)
	}
	split := f.SingleRHS()
	if len(split) != 2 || split[0].RHS[0].String() != "x.b" || split[1].RHS[0].String() != "x.c" {
		t.Errorf("SingleRHS = %v", split)
	}
}

// TestExample41 checks that the Figure 1(a) document satisfies the three
// FDs of Example 4.1.
func TestExample41(t *testing.T) {
	tree := xmltree.MustParseString(load(t, "courses.xml"))
	for _, s := range []string{fd1, fd2, fd3} {
		if !Satisfies(tree, MustParse(s)) {
			t.Errorf("Figure 1(a) document should satisfy %s", s)
		}
	}
}

// TestFD3Violation: updating one copy of a redundant name (the paper's
// update-anomaly example) violates FD3.
func TestFD3Violation(t *testing.T) {
	tree := xmltree.MustParseString(load(t, "courses.xml"))
	// Rename st1 in one course only.
	student := tree.Root.Children[0].ChildrenLabelled("taken_by")[0].Children[0]
	if v, _ := student.Attr("sno"); v != "st1" {
		t.Fatal("fixture changed")
	}
	student.ChildrenLabelled("name")[0].SetText("Doe")

	f := MustParse(fd3)
	if Satisfies(tree, f) {
		t.Fatal("FD3 should now be violated")
	}
	pair, ok := Violation(tree, f)
	if !ok {
		t.Fatal("no violation witness")
	}
	sno := dtd.MustParsePath("courses.course.taken_by.student.@sno")
	v0, _ := pair[0].Get(sno)
	v1, _ := pair[1].Get(sno)
	if v0.Str() != "st1" || v1.Str() != "st1" {
		t.Errorf("witness pair has snos %s, %s; want st1, st1", v0, v1)
	}
	// FD1 and FD2 still hold.
	if !SatisfiesAll(tree, []FD{MustParse(fd1), MustParse(fd2)}) {
		t.Error("FD1/FD2 should still hold")
	}
}

// TestFD1Violation: two courses with the same cno violate the key FD1.
func TestFD1Violation(t *testing.T) {
	doc := `<courses>
  <course cno="c1"><title>A</title><taken_by/></course>
  <course cno="c1"><title>B</title><taken_by/></course>
</courses>`
	tree := xmltree.MustParseString(doc)
	if Satisfies(tree, MustParse(fd1)) {
		t.Error("duplicate cno should violate FD1")
	}
	// A single course trivially satisfies it.
	one := xmltree.MustParseString(`<courses><course cno="c1"><title>A</title><taken_by/></course></courses>`)
	if !Satisfies(one, MustParse(fd1)) {
		t.Error("single course should satisfy FD1")
	}
}

// TestDBLPExample checks FD4 and FD5 of Example 5.2 on the DBLP
// document.
func TestDBLPExample(t *testing.T) {
	tree := xmltree.MustParseString(load(t, "dblp.xml"))
	fd4 := MustParse("db.conf.title.S -> db.conf")
	fd5 := MustParse("db.conf.issue -> db.conf.issue.inproceedings.@year")
	if !Satisfies(tree, fd4) {
		t.Error("DBLP document should satisfy FD4")
	}
	if !Satisfies(tree, fd5) {
		t.Error("DBLP document should satisfy FD5")
	}
	// Break FD5: one paper in the 2002 issue claims year 2003.
	issue := tree.Root.Children[0].ChildrenLabelled("issue")[0]
	issue.Children[1].SetAttr("year", "2003")
	if Satisfies(tree, fd5) {
		t.Error("modified document should violate FD5")
	}
}

// TestNullSemantics exercises the Atzeni–Morfuni semantics: FDs do not
// fire when an LHS value is null, and null = null counts as agreement on
// the RHS.
func TestNullSemantics(t *testing.T) {
	// b is optional; two a's without b agree trivially.
	tree := xmltree.MustParseString(`<r><a k="1"/><a k="1"/></r>`)
	f := MustParse("r.a.b.@x -> r.a.@k")
	if !Satisfies(tree, f) {
		t.Error("FD with null LHS should be vacuously satisfied")
	}
	// RHS null on both sides: agreement.
	g := MustParse("r.a.@k -> r.a.b.@x")
	if !Satisfies(tree, g) {
		t.Error("⊥ = ⊥ should count as RHS agreement")
	}
	// RHS null on one side only: violation.
	tree2 := xmltree.MustParseString(`<r><a k="1"><b x="v"/></a><a k="1"/></r>`)
	if Satisfies(tree2, g) {
		t.Error("⊥ vs non-null RHS should be a violation")
	}
}

// TestNodeEqualityFDs: FDs whose RHS is an element path compare
// vertices, not values.
func TestNodeEqualityFDs(t *testing.T) {
	// Two courses with different cno: FD1 holds. Same structure but the
	// RHS is the course *vertex*.
	doc := `<courses>
  <course cno="c1"><title>A</title><taken_by/></course>
  <course cno="c2"><title>A</title><taken_by/></course>
</courses>`
	tree := xmltree.MustParseString(doc)
	if !Satisfies(tree, MustParse(fd1)) {
		t.Error("distinct cnos should satisfy the key")
	}
	// title.S -> course fails: same title, different vertices.
	f := MustParse("courses.course.title.S -> courses.course")
	if Satisfies(tree, f) {
		t.Error("same title on two course vertices should violate")
	}
}

func TestParseSet(t *testing.T) {
	in := "# comment\n" + fd1 + "\n\n" + fd3 + "\n"
	fds, err := ParseSet(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(fds) != 2 {
		t.Fatalf("got %d FDs", len(fds))
	}
	out := FormatSet(fds)
	again, err := ParseSet(out)
	if err != nil || len(again) != 2 {
		t.Fatalf("FormatSet round trip: %v, %d", err, len(again))
	}
	if _, err := ParseSet("garbage"); err == nil {
		t.Error("ParseSet should fail on garbage")
	}
}

func TestViolationReport(t *testing.T) {
	tree := xmltree.MustParseString(load(t, "courses.xml"))
	sigma := []FD{MustParse(fd1), MustParse(fd2), MustParse(fd3)}
	if rep := ViolationReport(tree, sigma); len(rep) != 0 {
		t.Fatalf("valid document reported violations: %v", rep)
	}
	// Break FD3.
	student := tree.Root.Children[0].ChildrenLabelled("taken_by")[0].Children[0]
	student.ChildrenLabelled("name")[0].SetText("Doe")
	rep := ViolationReport(tree, sigma)
	if len(rep) != 1 || !rep[0].FD.Equal(MustParse(fd3)) {
		t.Fatalf("report = %v, want FD3 only", rep)
	}
	if rep[0].Witness[0].Len() == 0 || rep[0].Witness[1].Len() == 0 {
		t.Error("witness tuples missing")
	}
}
