package xmltree

import (
	"fmt"
	"sort"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/regex"
)

// Conforms checks T ⊨ D (Definition 3): every node's label is a declared
// element type, its children sequence is in the language of the content
// model (string content for #PCDATA elements, nothing for EMPTY ones),
// the defined attributes are exactly R(label), and the root is labelled
// r. The first violation found is returned as a non-nil error; nil means
// the tree conforms.
func Conforms(t *Tree, d *dtd.DTD) error {
	if t.Root.Label != d.Root() {
		return fmt.Errorf("xmltree: root is <%s>, DTD root is <%s>", t.Root.Label, d.Root())
	}
	matchers := map[string]*regex.Matcher{}
	var check func(n *Node) error
	check = func(n *Node) error {
		e := d.Element(n.Label)
		if e == nil {
			return fmt.Errorf("xmltree: element <%s> not declared", n.Label)
		}
		// Attributes: att(v, @l) defined iff @l ∈ R(lab(v)).
		for a := range n.Attrs {
			if !e.HasAttr(a) {
				return fmt.Errorf("xmltree: <%s> has undeclared attribute %q", n.Label, a)
			}
		}
		for _, a := range e.Attrs {
			if _, ok := n.Attrs[a]; !ok {
				return fmt.Errorf("xmltree: <%s> missing attribute %q", n.Label, a)
			}
		}
		switch e.Kind {
		case dtd.EmptyContent:
			if n.HasText || len(n.Children) > 0 {
				return fmt.Errorf("xmltree: <%s> must be empty", n.Label)
			}
		case dtd.TextContent:
			if !n.HasText {
				return fmt.Errorf("xmltree: <%s> must have string content", n.Label)
			}
		case dtd.ModelContent:
			if n.HasText {
				return fmt.Errorf("xmltree: <%s> has string content but element content was declared", n.Label)
			}
			m := matchers[n.Label]
			if m == nil {
				m = regex.Compile(e.Model)
				matchers[n.Label] = m
			}
			labels := make([]string, len(n.Children))
			for i, c := range n.Children {
				labels[i] = c.Label
			}
			if !m.Match(labels) {
				return fmt.Errorf("xmltree: children of <%s> are %v, not in (%s)", n.Label, labels, e.Model)
			}
		}
		for _, c := range n.Children {
			if err := check(c); err != nil {
				return err
			}
		}
		return nil
	}
	return check(t.Root)
}

// ConformsUnordered checks [T] ⊨ D: whether some reordering of each
// node's children conforms to the DTD (the paper works with trees up to
// the equivalence ≡, writing [T] ⊨ D when some T' ≡ T conforms). For
// arbitrary regular expressions this is decided per node by searching
// the NFA over the multiset of child labels.
func ConformsUnordered(t *Tree, d *dtd.DTD) error {
	if t.Root.Label != d.Root() {
		return fmt.Errorf("xmltree: root is <%s>, DTD root is <%s>", t.Root.Label, d.Root())
	}
	matchers := map[string]*regex.Matcher{}
	var check func(n *Node) error
	check = func(n *Node) error {
		e := d.Element(n.Label)
		if e == nil {
			return fmt.Errorf("xmltree: element <%s> not declared", n.Label)
		}
		for a := range n.Attrs {
			if !e.HasAttr(a) {
				return fmt.Errorf("xmltree: <%s> has undeclared attribute %q", n.Label, a)
			}
		}
		for _, a := range e.Attrs {
			if _, ok := n.Attrs[a]; !ok {
				return fmt.Errorf("xmltree: <%s> missing attribute %q", n.Label, a)
			}
		}
		switch e.Kind {
		case dtd.EmptyContent:
			if n.HasText || len(n.Children) > 0 {
				return fmt.Errorf("xmltree: <%s> must be empty", n.Label)
			}
		case dtd.TextContent:
			if !n.HasText {
				return fmt.Errorf("xmltree: <%s> must have string content", n.Label)
			}
		case dtd.ModelContent:
			if n.HasText {
				return fmt.Errorf("xmltree: <%s> has string content but element content was declared", n.Label)
			}
			m := matchers[n.Label]
			if m == nil {
				m = regex.Compile(e.Model)
				matchers[n.Label] = m
			}
			labels := make([]string, len(n.Children))
			for i, c := range n.Children {
				labels[i] = c.Label
			}
			if !matchAnyPermutation(m, labels) {
				return fmt.Errorf("xmltree: no ordering of children %v of <%s> is in (%s)", labels, n.Label, e.Model)
			}
		}
		for _, c := range n.Children {
			if err := check(c); err != nil {
				return err
			}
		}
		return nil
	}
	return check(t.Root)
}

// matchAnyPermutation decides whether some permutation of word is
// accepted. It tries the word itself and the sorted order first (which
// covers simple and disjunctive models), then falls back to a
// backtracking search over distinct letters with memoization on
// (remaining multiset) — exponential only in the number of *distinct*
// labels, which is small in any DTD.
func matchAnyPermutation(m *regex.Matcher, word []string) bool {
	if m.Match(word) {
		return true
	}
	sorted := append([]string(nil), word...)
	sort.Strings(sorted)
	if m.Match(sorted) {
		return true
	}
	counts := map[string]int{}
	for _, w := range word {
		counts[w]++
	}
	letters := make([]string, 0, len(counts))
	for l := range counts {
		letters = append(letters, l)
	}
	sort.Strings(letters)
	var build []string
	var rec func() bool
	rec = func() bool {
		if len(build) == len(word) {
			return m.Match(build)
		}
		for _, l := range letters {
			if counts[l] == 0 {
				continue
			}
			counts[l]--
			build = append(build, l)
			if rec() {
				return true
			}
			build = build[:len(build)-1]
			counts[l]++
		}
		return false
	}
	return rec()
}

// Compatible checks T ◁ D: paths(T) ⊆ paths(D) (Definition 3). Unlike
// conformance it ignores counts and required children/attributes.
func Compatible(t *Tree, d *dtd.DTD) error {
	for _, p := range t.Paths() {
		path, err := dtd.ParsePath(p)
		if err != nil {
			return fmt.Errorf("xmltree: tree path %q: %v", p, err)
		}
		if !d.IsPath(path) {
			return fmt.Errorf("xmltree: tree path %q is not a path of the DTD", p)
		}
	}
	return nil
}

// Subsumed checks T1 ≼ T2 (Section 3): V1 ⊆ V2 (by vertex ID), equal
// roots, agreeing labels and attributes, and each node's child list in
// T1 being a sublist of a permutation of (i.e. a sub-multiset of) its
// child list in T2.
func Subsumed(t1, t2 *Tree) bool {
	if t1.Root.ID != t2.Root.ID {
		return false
	}
	index := map[NodeID]*Node{}
	t2.Walk(func(n *Node, _ []string) bool {
		index[n.ID] = n
		return true
	})
	ok := true
	t1.Walk(func(n *Node, _ []string) bool {
		m := index[n.ID]
		if m == nil || m.Label != n.Label || !sameAttrs(n.Attrs, m.Attrs) {
			ok = false
			return false
		}
		if n.HasText && (!m.HasText || n.Text != m.Text) {
			ok = false
			return false
		}
		// Children of n must be a sub-multiset of children of m; since
		// vertex IDs are unique, multiset containment is ID containment.
		kids := map[NodeID]bool{}
		for _, c := range m.Children {
			kids[c.ID] = true
		}
		for _, c := range n.Children {
			if !kids[c.ID] {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

// Equivalent checks T1 ≡ T2: equality as unordered trees over the same
// vertices (T1 ≼ T2 and T2 ≼ T1).
func Equivalent(t1, t2 *Tree) bool {
	return Subsumed(t1, t2) && Subsumed(t2, t1)
}

// StrictlySubsumed checks T1 ≺ T2: T1 ≼ T2 and not T2 ≼ T1.
func StrictlySubsumed(t1, t2 *Tree) bool {
	return Subsumed(t1, t2) && !Subsumed(t2, t1)
}

// Isomorphic reports whether the two trees are equal as unordered trees
// ignoring vertex identity (equal canonical forms).
func Isomorphic(t1, t2 *Tree) bool {
	return t1.Canonical() == t2.Canonical()
}

func sameAttrs(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
