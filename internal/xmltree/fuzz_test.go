package xmltree

import "testing"

// FuzzParse checks the XML reader never panics and that accepted
// documents survive serialize/parse up to isomorphism.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"<a/>", "<a><b/>text</a>", "<a x='1'><b>t</b></a>", "<a>", "text",
		`<r><x k="&lt;&amp;"/><y>1 &lt; 2</y></r>`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		tree, err := ParseString(input)
		if err != nil {
			return
		}
		again, err := ParseString(tree.String())
		if err != nil {
			t.Fatalf("reparse failed: %v\nserialized:\n%s", err, tree)
		}
		if !Isomorphic(tree, again) {
			t.Fatalf("round trip changed the tree for %q", input)
		}
	})
}
