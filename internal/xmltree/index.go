package xmltree

// Index pairs a Tree with vertex and parent maps so that nodes can be
// addressed by NodeID in O(1) and edited in place without re-walking
// the tree. Tree itself is a pure value: NodeByID walks, and nothing
// records parents. The incremental checking engine
// (internal/incremental) needs both on every edit, so the maps live
// here and every edit primitive keeps them coherent — after any
// sequence of InsertSubtree/DeleteSubtree/SetAttr/SetText calls the
// index answers exactly like a fresh NewIndex over the current tree.

import "fmt"

// UnknownNodeError reports an operation addressed at a vertex that is
// not in the indexed tree — the typed "no such NodeID" failure edit
// scripts must be able to branch on without string matching.
type UnknownNodeError struct{ ID NodeID }

func (e *UnknownNodeError) Error() string {
	return fmt.Sprintf("xmltree: no node #%d in the tree", e.ID)
}

// Index is an identity-indexed view of a Tree. Build one with NewIndex
// and apply every subsequent mutation through the Index's own edit
// primitives; mutating the tree behind the Index's back leaves the
// maps stale. An Index is not safe for concurrent use.
type Index struct {
	tree   *Tree
	nodes  map[NodeID]*Node
	parent map[NodeID]*Node // absent for the root
}

// NewIndex indexes the tree. Duplicate vertex IDs are an error — the
// identity maps would be ambiguous (trees built through NewNode or
// Parse never have any).
func NewIndex(t *Tree) (*Index, error) {
	ix := &Index{
		tree:   t,
		nodes:  make(map[NodeID]*Node),
		parent: make(map[NodeID]*Node),
	}
	if err := ix.register(t.Root, nil); err != nil {
		return nil, err
	}
	return ix, nil
}

// register adds the subtree rooted at n (with the given parent) to the
// maps, failing on any ID collision.
func (ix *Index) register(n *Node, parent *Node) error {
	if prev, ok := ix.nodes[n.ID]; ok {
		return fmt.Errorf("xmltree: duplicate node #%d (labels %q and %q)", n.ID, prev.Label, n.Label)
	}
	ix.nodes[n.ID] = n
	if parent != nil {
		ix.parent[n.ID] = parent
	}
	for _, c := range n.Children {
		if err := ix.register(c, n); err != nil {
			return err
		}
	}
	return nil
}

// deregister removes the subtree rooted at n from the maps.
func (ix *Index) deregister(n *Node) {
	delete(ix.nodes, n.ID)
	delete(ix.parent, n.ID)
	for _, c := range n.Children {
		ix.deregister(c)
	}
}

// Tree returns the indexed tree. Treat it as read-only: all mutation
// must go through the Index's edit primitives.
func (ix *Index) Tree() *Tree { return ix.tree }

// Len returns the number of element nodes in the tree.
func (ix *Index) Len() int { return len(ix.nodes) }

// Has reports whether the vertex ID is in the indexed tree — the O(1)
// membership probe behind freshness checks that fold several walks
// into one (the transaction insert path of internal/incremental).
func (ix *Index) Has(id NodeID) bool {
	_, ok := ix.nodes[id]
	return ok
}

// Node returns the node with the given vertex ID, or an
// UnknownNodeError.
func (ix *Index) Node(id NodeID) (*Node, error) {
	n, ok := ix.nodes[id]
	if !ok {
		return nil, &UnknownNodeError{ID: id}
	}
	return n, nil
}

// Parent returns the parent of the node, or nil for the root.
func (ix *Index) Parent(id NodeID) (*Node, error) {
	if _, ok := ix.nodes[id]; !ok {
		return nil, &UnknownNodeError{ID: id}
	}
	return ix.parent[id], nil
}

// Spine returns the ancestor chain of the node from the root to the
// node itself, inclusive — the choice points a tree tuple must commit
// to in order to contain the node.
func (ix *Index) Spine(id NodeID) ([]*Node, error) {
	n, ok := ix.nodes[id]
	if !ok {
		return nil, &UnknownNodeError{ID: id}
	}
	var rev []*Node
	for n != nil {
		rev = append(rev, n)
		n = ix.parent[n.ID]
	}
	spine := make([]*Node, len(rev))
	for i, n := range rev {
		spine[len(rev)-1-i] = n
	}
	return spine, nil
}

// SetAttr sets an attribute on the addressed node.
func (ix *Index) SetAttr(id NodeID, name, value string) error {
	n, err := ix.Node(id)
	if err != nil {
		return err
	}
	n.SetAttr(name, value)
	return nil
}

// SetText replaces the addressed node's string content. Nodes with
// element children are rejected: silently dropping a subtree (as
// Node.SetText would) must go through DeleteSubtree so the index stays
// coherent.
func (ix *Index) SetText(id NodeID, text string) error {
	n, err := ix.Node(id)
	if err != nil {
		return err
	}
	if len(n.Children) > 0 {
		return fmt.Errorf("xmltree: node #%d <%s> has element children; delete them before SetText", id, n.Label)
	}
	n.SetText(text)
	return nil
}

// CheckInsert reports whether InsertSubtree(parentID, sub) would
// succeed, without mutating anything: the parent must exist and have
// element (or empty) content, and no vertex of sub may already be in
// the tree. Callers that must do work between validating and applying
// an insert (the incremental engine retracts tuples in between) call
// this first.
func (ix *Index) CheckInsert(parentID NodeID, sub *Node) error {
	p, err := ix.Node(parentID)
	if err != nil {
		return err
	}
	if sub == nil {
		return fmt.Errorf("xmltree: insert of a nil subtree")
	}
	if p.HasText {
		return fmt.Errorf("xmltree: node #%d <%s> has string content; mixed content is not representable", parentID, p.Label)
	}
	return ix.checkFresh(sub)
}

// checkFresh verifies no vertex of the subtree is already indexed.
func (ix *Index) checkFresh(n *Node) error {
	if prev, ok := ix.nodes[n.ID]; ok {
		return fmt.Errorf("xmltree: node #%d <%s> is already in the tree (as <%s>)", n.ID, n.Label, prev.Label)
	}
	for _, c := range n.Children {
		if err := ix.checkFresh(c); err != nil {
			return err
		}
	}
	return nil
}

// InsertSubtree appends sub as the last child of the addressed parent
// and registers its vertices. Inserting a subtree that is already in
// the tree is an error (Clone it for a copy with fresh IDs).
func (ix *Index) InsertSubtree(parentID NodeID, sub *Node) error {
	if err := ix.CheckInsert(parentID, sub); err != nil {
		return err
	}
	p := ix.nodes[parentID]
	p.Children = append(p.Children, sub)
	if err := ix.register(sub, p); err != nil {
		// checkFresh vetted the IDs against the tree; a failure here
		// means sub itself carries duplicates. Undo the append.
		p.Children = p.Children[:len(p.Children)-1]
		ix.deregister(sub)
		return err
	}
	return nil
}

// GraftSubtreeAt splices sub in as child i (0 ≤ i ≤ len(Children)) of
// the addressed parent and registers its vertices. It is InsertSubtree
// with a position and without the freshness pre-walk: callers that
// have already vetted the subtree against the tree (CheckInsert, or an
// equivalent combined walk) use it to skip the redundant pass, and the
// rollback path of a transaction uses the position to re-attach a
// deleted subtree exactly where it was. The register walk still fails
// closed on any ID collision, undoing the splice.
func (ix *Index) GraftSubtreeAt(parentID NodeID, i int, sub *Node) error {
	p, err := ix.Node(parentID)
	if err != nil {
		return err
	}
	if sub == nil {
		return fmt.Errorf("xmltree: insert of a nil subtree")
	}
	if p.HasText {
		return fmt.Errorf("xmltree: node #%d <%s> has string content; mixed content is not representable", parentID, p.Label)
	}
	if i < 0 || i > len(p.Children) {
		return fmt.Errorf("xmltree: graft position %d out of range [0, %d] under node #%d", i, len(p.Children), parentID)
	}
	p.Children = append(p.Children, nil)
	copy(p.Children[i+1:], p.Children[i:])
	p.Children[i] = sub
	var added []NodeID
	if err := ix.registerTrack(sub, p, &added); err != nil {
		// Undo EXACTLY what this call registered: a collision may be
		// against the tree itself, so a blind subtree deregistration
		// would evict live entries.
		p.Children = append(p.Children[:i], p.Children[i+1:]...)
		for _, id := range added {
			delete(ix.nodes, id)
			delete(ix.parent, id)
		}
		return err
	}
	return nil
}

// registerTrack is register with an audit trail of the IDs it added,
// so a failed graft can be undone precisely.
func (ix *Index) registerTrack(n *Node, parent *Node, added *[]NodeID) error {
	if prev, ok := ix.nodes[n.ID]; ok {
		return fmt.Errorf("xmltree: duplicate node #%d (labels %q and %q)", n.ID, prev.Label, n.Label)
	}
	ix.nodes[n.ID] = n
	if parent != nil {
		ix.parent[n.ID] = parent
	}
	*added = append(*added, n.ID)
	for _, c := range n.Children {
		if err := ix.registerTrack(c, n, added); err != nil {
			return err
		}
	}
	return nil
}

// ChildIndex returns the position of the node among its parent's
// children, or -1 for the root. Recorded before a DeleteSubtree, it is
// what GraftSubtreeAt needs to undo the delete exactly.
func (ix *Index) ChildIndex(id NodeID) (int, error) {
	n, err := ix.Node(id)
	if err != nil {
		return 0, err
	}
	p := ix.parent[id]
	if p == nil {
		return -1, nil
	}
	for i, c := range p.Children {
		if c == n {
			return i, nil
		}
	}
	return 0, fmt.Errorf("xmltree: node #%d is not among its parent's children (index corrupted)", id)
}

// DeleteSubtree detaches the addressed node (and everything below it)
// from its parent and deregisters its vertices. The root cannot be
// deleted.
func (ix *Index) DeleteSubtree(id NodeID) error {
	n, err := ix.Node(id)
	if err != nil {
		return err
	}
	p := ix.parent[id]
	if p == nil {
		return fmt.Errorf("xmltree: cannot delete the root node #%d", id)
	}
	for i, c := range p.Children {
		if c == n {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			break
		}
	}
	ix.deregister(n)
	return nil
}
