package xmltree

import (
	"errors"
	"testing"
)

// rebuild checks the index answers exactly like a fresh index over the
// current tree: same node set, same parents.
func checkCoherent(t *testing.T, ix *Index) {
	t.Helper()
	fresh, err := NewIndex(ix.tree)
	if err != nil {
		t.Fatalf("fresh index: %v", err)
	}
	if len(ix.nodes) != len(fresh.nodes) {
		t.Fatalf("index has %d nodes, fresh walk finds %d", len(ix.nodes), len(fresh.nodes))
	}
	for id, n := range fresh.nodes {
		if got, ok := ix.nodes[id]; !ok || got != n {
			t.Fatalf("node #%d: index %p, fresh %p", id, got, n)
		}
		if gp, fp := ix.parent[id], fresh.parent[id]; gp != fp {
			t.Fatalf("node #%d: index parent %p, fresh parent %p", id, gp, fp)
		}
	}
}

func TestIndexEditsStayCoherent(t *testing.T) {
	doc := MustParseString(`<r><a k="1"><b/></a><a k="2"/><t>hi</t></r>`)
	ix, err := NewIndex(doc)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 5 {
		t.Fatalf("Len = %d, want 5", ix.Len())
	}
	checkCoherent(t, ix)

	a1 := doc.Root.Children[0]
	if err := ix.SetAttr(a1.ID, "k", "9"); err != nil {
		t.Fatal(err)
	}
	if v, _ := a1.Attr("k"); v != "9" {
		t.Fatalf("SetAttr: k = %q", v)
	}

	// Insert a fresh subtree under a1 and check registration.
	sub := NewNode("c").SetAttr("v", "x")
	sub.Append(NewNode("d"))
	if err := ix.InsertSubtree(a1.ID, sub); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 7 {
		t.Fatalf("Len after insert = %d, want 7", ix.Len())
	}
	checkCoherent(t, ix)
	if p, _ := ix.Parent(sub.ID); p != a1 {
		t.Fatalf("parent of inserted subtree = %p, want %p", p, a1)
	}

	// Spine runs root..node.
	spine, err := ix.Spine(sub.Children[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	var labels []string
	for _, n := range spine {
		labels = append(labels, n.Label)
	}
	if got, want := len(labels), 4; got != want {
		t.Fatalf("spine %v, want depth %d", labels, want)
	}
	for i, want := range []string{"r", "a", "c", "d"} {
		if labels[i] != want {
			t.Fatalf("spine labels = %v", labels)
		}
	}

	// Re-inserting the same subtree must fail (IDs collide) and leave
	// the index unchanged.
	if err := ix.InsertSubtree(a1.ID, sub); err == nil {
		t.Fatal("re-insert of an attached subtree should fail")
	}
	checkCoherent(t, ix)

	// Delete it again.
	if err := ix.DeleteSubtree(sub.ID); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 5 {
		t.Fatalf("Len after delete = %d, want 5", ix.Len())
	}
	checkCoherent(t, ix)
	if _, err := ix.Node(sub.ID); err == nil {
		t.Fatal("deleted node still indexed")
	}

	// SetText on the text leaf works; on an element parent it refuses.
	txt := doc.Root.Children[2]
	if err := ix.SetText(txt.ID, "bye"); err != nil {
		t.Fatal(err)
	}
	if doc.Root.Children[2].Text != "bye" {
		t.Fatal("SetText did not apply")
	}
	if err := ix.SetText(a1.ID, "nope"); err == nil {
		t.Fatal("SetText over element children should fail")
	}
	checkCoherent(t, ix)
}

func TestIndexTypedErrors(t *testing.T) {
	doc := MustParseString(`<r><a/></r>`)
	ix, err := NewIndex(doc)
	if err != nil {
		t.Fatal(err)
	}
	missing := FreshID()
	var unknown *UnknownNodeError
	for name, call := range map[string]func() error{
		"SetAttr":       func() error { return ix.SetAttr(missing, "k", "v") },
		"SetText":       func() error { return ix.SetText(missing, "t") },
		"DeleteSubtree": func() error { return ix.DeleteSubtree(missing) },
		"InsertSubtree": func() error { return ix.InsertSubtree(missing, NewNode("x")) },
	} {
		err := call()
		if !errors.As(err, &unknown) {
			t.Errorf("%s(#%d): err = %v, want UnknownNodeError", name, missing, err)
		} else if unknown.ID != missing {
			t.Errorf("%s: UnknownNodeError.ID = %d, want %d", name, unknown.ID, missing)
		}
	}
	if err := ix.DeleteSubtree(doc.Root.ID); err == nil {
		t.Fatal("deleting the root should fail")
	}
	// Inserting under a text node is mixed content.
	tdoc := MustParseString(`<r><s>hi</s></r>`)
	tix, err := NewIndex(tdoc)
	if err != nil {
		t.Fatal(err)
	}
	if err := tix.InsertSubtree(tdoc.Root.Children[0].ID, NewNode("x")); err == nil {
		t.Fatal("insert under string content should fail")
	}
	// Duplicate IDs at construction are rejected.
	dup := NewNode("r")
	child := NewNode("a")
	child.ID = dup.ID
	dup.Append(child)
	if _, err := NewIndex(NewTree(dup)); err == nil {
		t.Fatal("NewIndex over duplicate IDs should fail")
	}
}

func TestIndexGraftSubtreeAt(t *testing.T) {
	doc := MustParseString(`<r><a/><b/><c/></r>`)
	ix, err := NewIndex(doc)
	if err != nil {
		t.Fatal(err)
	}
	b := doc.Root.Children[1]
	pos, err := ix.ChildIndex(b.ID)
	if err != nil || pos != 1 {
		t.Fatalf("ChildIndex(b) = %d, %v; want 1", pos, err)
	}
	if pos, err := ix.ChildIndex(doc.Root.ID); err != nil || pos != -1 {
		t.Fatalf("ChildIndex(root) = %d, %v; want -1", pos, err)
	}
	if err := ix.DeleteSubtree(b.ID); err != nil {
		t.Fatal(err)
	}
	if ix.Has(b.ID) {
		t.Fatal("Has reports a deleted node")
	}
	// Graft it back at its recorded position: the delete is undone.
	if err := ix.GraftSubtreeAt(doc.Root.ID, pos, b); err != nil {
		t.Fatal(err)
	}
	checkCoherent(t, ix)
	if !ix.Has(b.ID) {
		t.Fatal("Has misses a grafted node")
	}
	var labels []string
	for _, c := range doc.Root.Children {
		labels = append(labels, c.Label)
	}
	if len(labels) != 3 || labels[0] != "a" || labels[1] != "b" || labels[2] != "c" {
		t.Fatalf("children after graft: %v, want [a b c]", labels)
	}

	// Out-of-range positions and nil subtrees are rejected.
	if err := ix.GraftSubtreeAt(doc.Root.ID, 4, NewNode("x")); err == nil {
		t.Fatal("graft past the end should fail")
	}
	if err := ix.GraftSubtreeAt(doc.Root.ID, -1, NewNode("x")); err == nil {
		t.Fatal("graft at -1 should fail")
	}
	if err := ix.GraftSubtreeAt(doc.Root.ID, 0, nil); err == nil {
		t.Fatal("graft of nil should fail")
	}

	// A graft colliding with the TREE fails closed and must not evict
	// the tree's own index entries.
	clash := NewNode("z")
	clash.Append(b) // b is registered: register fails mid-walk
	if err := ix.GraftSubtreeAt(doc.Root.ID, 0, clash); err == nil {
		t.Fatal("graft of an already-indexed subtree should fail")
	}
	checkCoherent(t, ix)
	if !ix.Has(b.ID) {
		t.Fatal("failed graft evicted a live tree node from the index")
	}
	clash.Children = nil // detach for hygiene
}
