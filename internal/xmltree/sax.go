package xmltree

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// This file is the streaming (SAX-style) front end of the data model:
// WalkTokens drives encoding/xml over a reader and delivers the
// document as Open/Text/Close callbacks, enforcing exactly the same
// structural rules as Parse — one root, no mixed content, no character
// data outside the root, balanced tags. Parse itself is a WalkTokens
// client that materializes a Tree; the tuple streamer (internal/tuples)
// is a client that never does, which is what makes constant-memory
// validation of arbitrarily large documents possible.

// DefaultMaxDepth is the element-nesting bound streaming entry points
// apply when the caller does not choose one. Hostile deeply-nested
// input then fails with a DepthError instead of growing state without
// bound.
const DefaultMaxDepth = 10000

// MalformedError reports input rejected by the XML reader or by the
// data model's structural rules (Definition 2: no mixed content, one
// root, element or string content). It wraps the same errors Parse
// returns; test with errors.As.
type MalformedError struct {
	Err error
}

func (e *MalformedError) Error() string { return e.Err.Error() }

// Unwrap returns the underlying cause.
func (e *MalformedError) Unwrap() error { return e.Err }

func malformedf(format string, args ...any) error {
	return &MalformedError{Err: fmt.Errorf("xmltree: "+format, args...)}
}

// DepthError reports element nesting beyond the configured limit.
type DepthError struct {
	Depth, Limit int
}

func (e *DepthError) Error() string {
	return fmt.Sprintf("xmltree: element nesting depth %d exceeds the limit %d", e.Depth, e.Limit)
}

// Attr is one attribute of a streamed element. Attributes are
// delivered in document order with xmlns declarations removed;
// repeated names are delivered as written, and consumers that want
// Parse's map semantics must let the last occurrence win.
type Attr struct {
	Name, Value string
}

// TokenCallbacks receives a document as structural events. Any nil
// callback is skipped. Open's attrs slice and Text's byte slice are
// only valid for the duration of the call — the walker reuses both.
// Text is delivered at most once per element, immediately before its
// Close, with all character-data chunks concatenated (whitespace-only
// chunks between elements are dropped, as in Parse). A non-nil error
// from any callback aborts the walk and is returned verbatim.
type TokenCallbacks struct {
	Open  func(label string, attrs []Attr) error
	Text  func(text []byte) error
	Close func(label string) error
}

// wtFrame is one open element during a walk.
type wtFrame struct {
	label       string
	hasChildren bool
}

// WalkTokens streams the XML document from r through cb. It accepts
// exactly the documents Parse accepts and rejects the rest with a
// *MalformedError carrying the same message Parse reports, except that
// a positive maxDepth additionally rejects nesting beyond it with a
// *DepthError (maxDepth <= 0 means unlimited). Memory use is bounded
// by the nesting depth plus the largest single text node — nothing
// proportional to the document is retained.
func WalkTokens(r io.Reader, maxDepth int, cb TokenCallbacks) error {
	dec := xml.NewDecoder(r)
	var stack []wtFrame
	var text []byte  // pending character data of the innermost element
	var attrs []Attr // reused per StartElement
	rootSeen := false
	// flushText delivers and clears the pending character data of the
	// innermost element; Parse's rules guarantee only the innermost
	// open element can be holding text.
	flushText := func() error {
		if len(text) == 0 {
			return nil
		}
		var err error
		if cb.Text != nil {
			err = cb.Text(text)
		}
		text = text[:0]
		return err
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return &MalformedError{Err: fmt.Errorf("xmltree: %v", err)}
		}
		switch t := tok.(type) {
		case xml.StartElement:
			label := elemName(t.Name)
			if len(stack) == 0 {
				if rootSeen {
					return malformedf("multiple root elements")
				}
				rootSeen = true
			} else {
				top := &stack[len(stack)-1]
				if len(text) > 0 {
					return malformedf("mixed content under <%s>", top.label)
				}
				top.hasChildren = true
			}
			if maxDepth > 0 && len(stack)+1 > maxDepth {
				return &DepthError{Depth: len(stack) + 1, Limit: maxDepth}
			}
			attrs = attrs[:0]
			for _, a := range t.Attr {
				name := elemName(a.Name)
				if name == "xmlns" || strings.HasPrefix(name, "xmlns:") {
					continue
				}
				attrs = append(attrs, Attr{Name: name, Value: a.Value})
			}
			if cb.Open != nil {
				if err := cb.Open(label, attrs); err != nil {
					return err
				}
			}
			stack = append(stack, wtFrame{label: label})
		case xml.EndElement:
			if len(stack) == 0 {
				// Unreachable with encoding/xml's strict decoder, which
				// reports stray end tags itself; kept as a defensive rule.
				return malformedf("unbalanced end tag </%s>", elemName(t.Name))
			}
			if err := flushText(); err != nil {
				return err
			}
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cb.Close != nil {
				if err := cb.Close(top.label); err != nil {
					return err
				}
			}
		case xml.CharData:
			if len(bytes.TrimSpace(t)) == 0 {
				continue
			}
			if len(stack) == 0 {
				return malformedf("character data outside the root element")
			}
			top := &stack[len(stack)-1]
			if top.hasChildren {
				return malformedf("mixed content under <%s>", top.label)
			}
			text = append(text, t...)
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Ignored.
		}
	}
	if !rootSeen {
		return malformedf("no root element")
	}
	if len(stack) != 0 {
		return malformedf("unbalanced document")
	}
	return nil
}
