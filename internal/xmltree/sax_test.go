package xmltree

import (
	"errors"
	"strings"
	"testing"
)

// TestWalkTokensParseAgreement: WalkTokens must accept exactly what
// Parse accepts, with identical error messages on rejection.
func TestWalkTokensParseAgreement(t *testing.T) {
	cases := []string{
		"<r/>",
		"<r><a>x</a><b k=\"1\"/></r>",
		"<r>text</r>",
		"<r><a/>text</r>",          // mixed content
		"<r>text<a/></r>",          // mixed content, other order
		"<r/><r/>",                 // multiple roots
		"",                         // no root
		"<r><a>",                   // unbalanced
		"x<r/>",                    // chardata outside root (decoder may reject first)
		"<r></q>",                  // mismatched tags
		"<r a=\"1\" a=\"2\"/>",     // duplicate attribute (decoder accepts)
		"<r xmlns=\"u\" k=\"v\"/>", // xmlns filtering
		"<r>a<!-- c -->b</r>",      // comment splits chardata
	}
	for _, src := range cases {
		_, perr := Parse(strings.NewReader(src))
		werr := WalkTokens(strings.NewReader(src), 0, TokenCallbacks{})
		switch {
		case (perr == nil) != (werr == nil):
			t.Errorf("%q: Parse err %v, WalkTokens err %v", src, perr, werr)
		case perr != nil && perr.Error() != werr.Error():
			t.Errorf("%q: Parse err %q, WalkTokens err %q", src, perr, werr)
		}
		if werr != nil {
			var me *MalformedError
			if !errors.As(werr, &me) {
				t.Errorf("%q: WalkTokens error is not a MalformedError: %v", src, werr)
			}
		}
	}
}

// TestWalkTokensEvents pins the event protocol: text concatenated and
// delivered once before Close, whitespace dropped, xmlns filtered,
// namespace prefixes kept verbatim.
func TestWalkTokensEvents(t *testing.T) {
	src := "<r xmlns:p=\"u\">\n  <p:a k=\"1\" k=\"2\">one&amp;two</p:a>\n  <b/>\n</r>"
	var events []string
	err := WalkTokens(strings.NewReader(src), 0, TokenCallbacks{
		Open: func(label string, attrs []Attr) error {
			ev := "open " + label
			for _, a := range attrs {
				ev += " " + a.Name + "=" + a.Value
			}
			events = append(events, ev)
			return nil
		},
		Text: func(text []byte) error {
			events = append(events, "text "+string(text))
			return nil
		},
		Close: func(label string) error {
			events = append(events, "close "+label)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"open r",
		"open u:a k=1 k=2",
		"text one&two",
		"close u:a",
		"open b",
		"close b",
		"close r",
	}
	if len(events) != len(want) {
		t.Fatalf("events: got %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d: got %q, want %q", i, events[i], want[i])
		}
	}
}

// TestWalkTokensDepthLimit: nesting beyond maxDepth fails with a typed
// DepthError at the exact violating element.
func TestWalkTokensDepthLimit(t *testing.T) {
	src := "<a><a><a><a></a></a></a></a>"
	if err := WalkTokens(strings.NewReader(src), 4, TokenCallbacks{}); err != nil {
		t.Fatalf("depth 4 at limit 4: %v", err)
	}
	err := WalkTokens(strings.NewReader(src), 3, TokenCallbacks{})
	var de *DepthError
	if !errors.As(err, &de) {
		t.Fatalf("want DepthError, got %v", err)
	}
	if de.Depth != 4 || de.Limit != 3 {
		t.Fatalf("DepthError = %+v, want Depth 4 Limit 3", de)
	}
}

// TestWalkTokensCallbackError: a callback error aborts the walk and is
// returned verbatim, not wrapped.
func TestWalkTokensCallbackError(t *testing.T) {
	sentinel := errors.New("stop here")
	opens := 0
	err := WalkTokens(strings.NewReader("<r><a/><b/></r>"), 0, TokenCallbacks{
		Open: func(label string, _ []Attr) error {
			opens++
			if label == "a" {
				return sentinel
			}
			return nil
		},
	})
	if err != sentinel {
		t.Fatalf("want the sentinel error verbatim, got %v", err)
	}
	if opens != 2 {
		t.Fatalf("walk continued past the error: %d opens", opens)
	}
}
