// Package xmltree implements the XML tree data model of Definition 2 of
// Arenas & Libkin (PODS 2002): finite trees with labelled element nodes
// carrying attributes, where a node's content is either a list of
// element children or a single string. Mixed content is not represented,
// exactly as in the paper.
//
// Every node carries an identity (NodeID, the paper's vertex from Vert),
// which is what tree tuples store for element paths; two nodes are "the
// same vertex" iff their IDs are equal. The package provides parsing
// from XML text, serialization, conformance to a DTD (T ⊨ D,
// Definition 3), compatibility (T ◁ D), subsumption (T1 ≼ T2) and the
// derived unordered equivalence (T1 ≡ T2).
package xmltree

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// NodeID identifies a vertex. IDs are unique within a process run (a
// global counter), so nodes from different trees never collide, which is
// what Definitions 4-7 need when tuples from several trees are mixed.
type NodeID int64

var nextID atomic.Int64

// newID returns a fresh vertex identifier.
func newID() NodeID { return NodeID(nextID.Add(1)) }

// FreshID returns a vertex identifier that no existing node uses. It is
// used by code that synthesizes tree tuples before materializing their
// trees (e.g. counterexample construction in the implication engine).
func FreshID() NodeID { return newID() }

// Node is an element node. Its content is Children (element content) or
// Text (string content, when HasText is set); conforming trees never
// have both.
type Node struct {
	ID       NodeID
	Label    string
	Attrs    map[string]string
	Children []*Node
	Text     string
	HasText  bool
}

// NewNode returns a node with a fresh vertex ID and no attributes.
func NewNode(label string) *Node {
	return &Node{ID: newID(), Label: label}
}

// SetAttr sets an attribute value.
func (n *Node) SetAttr(name, value string) *Node {
	if n.Attrs == nil {
		n.Attrs = map[string]string{}
	}
	n.Attrs[name] = value
	return n
}

// Attr returns the attribute value and whether it is defined.
func (n *Node) Attr(name string) (string, bool) {
	v, ok := n.Attrs[name]
	return v, ok
}

// SetText makes the node's content the given string.
func (n *Node) SetText(s string) *Node {
	n.Text = s
	n.HasText = true
	n.Children = nil
	return n
}

// Append adds element children.
func (n *Node) Append(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	n.HasText = false
	return n
}

// ChildrenLabelled returns the children with the given label, in
// document order.
func (n *Node) ChildrenLabelled(label string) []*Node {
	var out []*Node
	for _, c := range n.Children {
		if c.Label == label {
			out = append(out, c)
		}
	}
	return out
}

// Clone returns a deep copy of the subtree with fresh vertex IDs.
func (n *Node) Clone() *Node {
	c := NewNode(n.Label)
	if n.Attrs != nil {
		c.Attrs = make(map[string]string, len(n.Attrs))
		for k, v := range n.Attrs {
			c.Attrs[k] = v
		}
	}
	c.Text, c.HasText = n.Text, n.HasText
	for _, ch := range n.Children {
		c.Children = append(c.Children, ch.Clone())
	}
	return c
}

// Tree is a rooted XML tree.
type Tree struct {
	Root *Node
}

// NewTree wraps a root node.
func NewTree(root *Node) *Tree { return &Tree{Root: root} }

// Clone deep-copies the tree with fresh vertex IDs.
func (t *Tree) Clone() *Tree { return &Tree{Root: t.Root.Clone()} }

// Walk calls fn for every node in pre-order, with its path of labels
// from the root (inclusive). Returning false stops the walk of that
// subtree.
func (t *Tree) Walk(fn func(n *Node, path []string) bool) {
	var rec func(n *Node, path []string)
	rec = func(n *Node, path []string) {
		path = append(path, n.Label)
		if !fn(n, path) {
			return
		}
		for _, c := range n.Children {
			rec(c, path)
		}
	}
	rec(t.Root, nil)
}

// Nodes returns all nodes in pre-order.
func (t *Tree) Nodes() []*Node {
	var out []*Node
	t.Walk(func(n *Node, _ []string) bool {
		out = append(out, n)
		return true
	})
	return out
}

// Size returns the number of element nodes.
func (t *Tree) Size() int { return len(t.Nodes()) }

// NodeByID finds a node by vertex ID, or nil.
func (t *Tree) NodeByID(id NodeID) *Node {
	var found *Node
	t.Walk(func(n *Node, _ []string) bool {
		if n.ID == id {
			found = n
			return false
		}
		return found == nil
	})
	return found
}

// Paths returns paths(T) of Definition 2: all label paths occurring in
// the tree, including attribute steps and the text step S.
func (t *Tree) Paths() []string {
	set := map[string]bool{}
	t.Walk(func(n *Node, path []string) bool {
		p := strings.Join(path, ".")
		set[p] = true
		for a := range n.Attrs {
			set[p+".@"+a] = true
		}
		if n.HasText {
			set[p+".S"] = true
		}
		return true
	})
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Canonical returns a canonical string for the tree viewed as an
// unordered tree, ignoring vertex IDs. Two trees have equal canonical
// forms iff they are isomorphic as unordered attribute-labelled trees.
// Used to compare reconstruction results in the losslessness tests.
func (t *Tree) Canonical() string {
	var enc func(n *Node) string
	enc = func(n *Node) string {
		var b strings.Builder
		b.WriteString(n.Label)
		if len(n.Attrs) > 0 {
			names := make([]string, 0, len(n.Attrs))
			for a := range n.Attrs {
				names = append(names, a)
			}
			sort.Strings(names)
			b.WriteByte('[')
			for i, a := range names {
				if i > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "@%s=%q", a, n.Attrs[a])
			}
			b.WriteByte(']')
		}
		if n.HasText {
			fmt.Fprintf(&b, "{%q}", n.Text)
			return b.String()
		}
		if len(n.Children) > 0 {
			kids := make([]string, len(n.Children))
			for i, c := range n.Children {
				kids[i] = enc(c)
			}
			sort.Strings(kids)
			b.WriteByte('(')
			b.WriteString(strings.Join(kids, ","))
			b.WriteByte(')')
		}
		return b.String()
	}
	return enc(t.Root)
}
