package xmltree

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xmlnorm/internal/dtd"
)

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("../../testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func loadTree(t *testing.T, name string) *Tree {
	t.Helper()
	tree, err := ParseString(readTestdata(t, name))
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return tree
}

func loadDTD(t *testing.T, name string) *dtd.DTD {
	t.Helper()
	d, err := dtd.Parse(readTestdata(t, name))
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return d
}

func TestParseCoursesDocument(t *testing.T) {
	tree := loadTree(t, "courses.xml")
	if tree.Root.Label != "courses" {
		t.Fatalf("root = %q", tree.Root.Label)
	}
	courses := tree.Root.ChildrenLabelled("course")
	if len(courses) != 2 {
		t.Fatalf("courses = %d, want 2", len(courses))
	}
	if v, _ := courses[0].Attr("cno"); v != "csc200" {
		t.Errorf("cno = %q", v)
	}
	title := courses[0].ChildrenLabelled("title")
	if len(title) != 1 || !title[0].HasText || title[0].Text != "Automata Theory" {
		t.Errorf("title = %+v", title)
	}
	students := courses[1].ChildrenLabelled("taken_by")[0].ChildrenLabelled("student")
	if len(students) != 2 {
		t.Fatalf("students = %d", len(students))
	}
	if v, _ := students[1].Attr("sno"); v != "st3" {
		t.Errorf("sno = %q", v)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"<a><b></a></b>",
		"<a>text<b/></a>", // mixed content
		"<a><b/>text</a>", // mixed content
		"<a/><b/>",        // two roots
		"text",            // data outside root
	}
	for _, in := range bad {
		if _, err := ParseString(in); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", in)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	for _, name := range []string{"courses.xml", "courses_xnf.xml", "dblp.xml"} {
		tree := loadTree(t, name)
		again, err := ParseString(tree.String())
		if err != nil {
			t.Fatalf("%s: reparse: %v", name, err)
		}
		if !Isomorphic(tree, again) {
			t.Errorf("%s: serialize/parse round trip changed the tree", name)
		}
	}
}

func TestEscaping(t *testing.T) {
	n := NewNode("r").SetAttr("a", `x<&"y`)
	c := NewNode("c").SetText("1 < 2 & 3 > 2")
	n.Append(c)
	tree := NewTree(n)
	again, err := ParseString(tree.String())
	if err != nil {
		t.Fatalf("reparse escaped: %v\n%s", err, tree)
	}
	if v, _ := again.Root.Attr("a"); v != `x<&"y` {
		t.Errorf("attr round trip = %q", v)
	}
	if got := again.Root.Children[0].Text; got != "1 < 2 & 3 > 2" {
		t.Errorf("text round trip = %q", got)
	}
}

func TestPathsOfTree(t *testing.T) {
	tree := loadTree(t, "courses.xml")
	paths := tree.Paths()
	want := []string{
		"courses",
		"courses.course",
		"courses.course.@cno",
		"courses.course.title",
		"courses.course.title.S",
		"courses.course.taken_by",
		"courses.course.taken_by.student",
		"courses.course.taken_by.student.@sno",
		"courses.course.taken_by.student.name",
		"courses.course.taken_by.student.name.S",
		"courses.course.taken_by.student.grade",
		"courses.course.taken_by.student.grade.S",
	}
	if len(paths) != len(want) {
		t.Fatalf("paths = %v", paths)
	}
	got := map[string]bool{}
	for _, p := range paths {
		got[p] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Fatalf("missing path %q in %v", w, paths)
		}
	}
}

func TestConforms(t *testing.T) {
	d := loadDTD(t, "courses.dtd")
	tree := loadTree(t, "courses.xml")
	if err := Conforms(tree, d); err != nil {
		t.Errorf("Figure 1(a) document should conform: %v", err)
	}
	if err := Compatible(tree, d); err != nil {
		t.Errorf("conforming tree should be compatible: %v", err)
	}

	dx := loadDTD(t, "courses_xnf.dtd")
	tx := loadTree(t, "courses_xnf.xml")
	if err := Conforms(tx, dx); err != nil {
		t.Errorf("Figure 1(b) document should conform to the revised DTD: %v", err)
	}
	if err := Conforms(tx, d); err == nil {
		t.Error("Figure 1(b) document must not conform to the original DTD")
	}

	dblp := loadDTD(t, "dblp.dtd")
	if err := Conforms(loadTree(t, "dblp.xml"), dblp); err != nil {
		t.Errorf("DBLP document should conform: %v", err)
	}
}

func TestConformsViolations(t *testing.T) {
	d := loadDTD(t, "courses.dtd")
	cases := []struct {
		name string
		doc  string
	}{
		{"wrong root", `<course cno="1"><title>t</title><taken_by/></course>`},
		{"missing attr", `<courses><course><title>t</title><taken_by/></course></courses>`},
		{"extra attr", `<courses><course cno="1" x="2"><title>t</title><taken_by/></course></courses>`},
		{"wrong order", `<courses><course cno="1"><taken_by/><title>t</title></course></courses>`},
		{"missing child", `<courses><course cno="1"><title>t</title></course></courses>`},
		{"text in element content", `<courses><course cno="1">hello</course></courses>`},
		{"missing text", `<courses><course cno="1"><title/><taken_by/></course></courses>`},
		{"undeclared element", `<courses><zzz/></courses>`},
	}
	for _, c := range cases {
		tree, err := ParseString(c.doc)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if err := Conforms(tree, d); err == nil {
			t.Errorf("%s: conformance should fail", c.name)
		}
	}
}

func TestConformsUnordered(t *testing.T) {
	d := loadDTD(t, "courses.dtd")
	// Children out of order: [T] ⊨ D even though T ⊭ D.
	doc := `<courses><course cno="1"><taken_by/><title>t</title></course></courses>`
	tree := MustParseString(doc)
	if err := Conforms(tree, d); err == nil {
		t.Fatal("ordered conformance should fail")
	}
	if err := ConformsUnordered(tree, d); err != nil {
		t.Errorf("unordered conformance should hold: %v", err)
	}
	// Still fails when a child is missing.
	tree2 := MustParseString(`<courses><course cno="1"><taken_by/></course></courses>`)
	if err := ConformsUnordered(tree2, d); err == nil {
		t.Error("unordered conformance should fail for missing title")
	}
}

func TestCompatibleButNotConforming(t *testing.T) {
	d := loadDTD(t, "courses.dtd")
	// course without taken_by: compatible (all paths valid) but not
	// conforming (content model needs both children).
	tree := MustParseString(`<courses><course cno="1"><title>t</title></course></courses>`)
	if err := Compatible(tree, d); err != nil {
		t.Errorf("Compatible: %v", err)
	}
	if err := Conforms(tree, d); err == nil {
		t.Error("Conforms should fail")
	}
	// Unknown attribute: not compatible.
	tree2 := MustParseString(`<courses><course cno="1" bad="x"/></courses>`)
	if err := Compatible(tree2, d); err == nil {
		t.Error("Compatible should fail for undeclared attribute")
	}
}

func TestSubsumption(t *testing.T) {
	tree := loadTree(t, "courses.xml")
	// A copy sharing vertex IDs but missing some children is subsumed.
	sub := &Tree{Root: shallowCopy(tree.Root)}
	// Remove the second course.
	sub.Root.Children = sub.Root.Children[:1]
	if !Subsumed(sub, tree) {
		t.Error("pruned tree should be subsumed")
	}
	if Subsumed(tree, sub) {
		t.Error("full tree should not be subsumed by pruned tree")
	}
	if !StrictlySubsumed(sub, tree) {
		t.Error("pruned tree should be strictly subsumed")
	}
	if !Equivalent(tree, tree) {
		t.Error("tree should be equivalent to itself")
	}
	// Reordering children preserves equivalence.
	re := &Tree{Root: shallowCopy(tree.Root)}
	re.Root.Children = []*Node{re.Root.Children[1], re.Root.Children[0]}
	if !Equivalent(re, tree) {
		t.Error("reordered tree should be ≡")
	}
	// A clone has different vertex IDs: not subsumed, but isomorphic.
	clone := tree.Clone()
	if Subsumed(clone, tree) {
		t.Error("clone with fresh IDs should not be subsumed")
	}
	if !Isomorphic(clone, tree) {
		t.Error("clone should be isomorphic")
	}
}

// shallowCopy copies the node structure reusing IDs and child pointers
// at lower levels (only the top node's child slice is fresh).
func shallowCopy(n *Node) *Node {
	c := &Node{ID: n.ID, Label: n.Label, Attrs: n.Attrs, Text: n.Text, HasText: n.HasText}
	c.Children = append([]*Node(nil), n.Children...)
	return c
}

func TestCanonicalIgnoresOrderAndIDs(t *testing.T) {
	a := MustParseString(`<r><x k="1"/><y/></r>`)
	b := MustParseString(`<r><y/><x k="1"/></r>`)
	if a.Canonical() != b.Canonical() {
		t.Error("canonical form should ignore child order")
	}
	c := MustParseString(`<r><x k="2"/><y/></r>`)
	if a.Canonical() == c.Canonical() {
		t.Error("canonical form should reflect attribute values")
	}
}

func TestNodeHelpers(t *testing.T) {
	n := NewNode("a")
	n2 := NewNode("a")
	if n.ID == n2.ID {
		t.Error("fresh nodes share an ID")
	}
	tree := loadTree(t, "courses.xml")
	if tree.Size() != 19 {
		t.Errorf("Size = %d, want 19", tree.Size())
	}
	some := tree.Root.Children[0]
	if got := tree.NodeByID(some.ID); got != some {
		t.Error("NodeByID failed")
	}
	if got := tree.NodeByID(-1); got != nil {
		t.Error("NodeByID(-1) should be nil")
	}
	if len(tree.Nodes()) != tree.Size() {
		t.Error("Nodes/Size disagree")
	}
}

func TestWalkPaths(t *testing.T) {
	tree := MustParseString(`<a><b><c/></b></a>`)
	var got []string
	tree.Walk(func(n *Node, path []string) bool {
		got = append(got, strings.Join(path, "."))
		return true
	})
	want := []string{"a", "a.b", "a.b.c"}
	if len(got) != len(want) {
		t.Fatalf("walk = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk = %v, want %v", got, want)
		}
	}
}
