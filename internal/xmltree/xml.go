package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document into a Tree. Whitespace-only character
// data between elements is ignored; any other character data becomes the
// node's string content. Mixed content (text next to element children)
// is rejected, since the paper's data model (Definition 2) excludes it.
// Namespaces are not interpreted; prefixed names are kept verbatim.
func Parse(r io.Reader) (*Tree, error) {
	dec := xml.NewDecoder(r)
	var stack []*Node
	var root *Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: %v", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := NewNode(elemName(t.Name))
			for _, a := range t.Attr {
				name := elemName(a.Name)
				if name == "xmlns" || strings.HasPrefix(name, "xmlns:") {
					continue
				}
				n.SetAttr(name, a.Value)
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmltree: multiple root elements")
				}
				root = n
			} else {
				parent := stack[len(stack)-1]
				if parent.HasText {
					return nil, fmt.Errorf("xmltree: mixed content under <%s>", parent.Label)
				}
				parent.Children = append(parent.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: unbalanced end tag </%s>", elemName(t.Name))
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			s := string(t)
			if strings.TrimSpace(s) == "" {
				continue
			}
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: character data outside the root element")
			}
			cur := stack[len(stack)-1]
			if len(cur.Children) > 0 {
				return nil, fmt.Errorf("xmltree: mixed content under <%s>", cur.Label)
			}
			if cur.HasText {
				cur.Text += s
			} else {
				cur.SetText(s)
			}
		case xml.Comment, xml.ProcInst, xml.Directive:
			// Ignored.
		}
	}
	if root == nil {
		return nil, fmt.Errorf("xmltree: no root element")
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: unbalanced document")
	}
	return NewTree(root), nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Tree, error) { return Parse(strings.NewReader(s)) }

// MustParseString is ParseString that panics on error; for tests.
func MustParseString(s string) *Tree {
	t, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return t
}

func elemName(n xml.Name) string {
	if n.Space != "" {
		return n.Space + ":" + n.Local
	}
	return n.Local
}

// String serializes the tree as indented XML. Attributes print in
// sorted order so output is deterministic.
func (t *Tree) String() string {
	var b strings.Builder
	writeNode(&b, t.Root, 0)
	return b.String()
}

func writeNode(b *strings.Builder, n *Node, depth int) {
	indent := strings.Repeat("  ", depth)
	b.WriteString(indent)
	b.WriteByte('<')
	b.WriteString(n.Label)
	names := make([]string, 0, len(n.Attrs))
	for a := range n.Attrs {
		names = append(names, a)
	}
	sortStrings(names)
	for _, a := range names {
		fmt.Fprintf(b, " %s=\"%s\"", a, escapeAttr(n.Attrs[a]))
	}
	switch {
	case n.HasText:
		b.WriteByte('>')
		b.WriteString(escapeText(n.Text))
		fmt.Fprintf(b, "</%s>\n", n.Label)
	case len(n.Children) == 0:
		b.WriteString("/>\n")
	default:
		b.WriteString(">\n")
		for _, c := range n.Children {
			writeNode(b, c, depth+1)
		}
		fmt.Fprintf(b, "%s</%s>\n", indent, n.Label)
	}
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func escapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", `"`, "&quot;")
	return r.Replace(s)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
