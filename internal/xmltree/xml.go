package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document into a Tree. Whitespace-only character
// data between elements is ignored; any other character data becomes the
// node's string content. Mixed content (text next to element children)
// is rejected, since the paper's data model (Definition 2) excludes it.
// Namespaces are not interpreted; prefixed names are kept verbatim.
//
// Parse is a WalkTokens client with no depth limit, so it accepts
// exactly the documents the streaming checkers accept; rejections are
// *MalformedError values. Callers that cannot afford the materialized
// tree should stream through WalkTokens instead.
func Parse(r io.Reader) (*Tree, error) { return ParseLimit(r, 0) }

// ParseLimit is Parse with an element-nesting bound: a positive
// maxDepth rejects deeper input with a *DepthError (0 means
// unlimited, WalkTokens' convention). Servers parsing untrusted
// request bodies use it so hostile nesting fails typed instead of
// growing the stack.
func ParseLimit(r io.Reader, maxDepth int) (*Tree, error) {
	var stack []*Node
	var root *Node
	err := WalkTokens(r, maxDepth, TokenCallbacks{
		Open: func(label string, attrs []Attr) error {
			n := NewNode(label)
			for _, a := range attrs {
				n.SetAttr(a.Name, a.Value)
			}
			if len(stack) == 0 {
				root = n
			} else {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, n)
			}
			stack = append(stack, n)
			return nil
		},
		Text: func(text []byte) error {
			stack[len(stack)-1].SetText(string(text))
			return nil
		},
		Close: func(string) error {
			stack = stack[:len(stack)-1]
			return nil
		},
	})
	if err != nil {
		return nil, err
	}
	return NewTree(root), nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Tree, error) { return Parse(strings.NewReader(s)) }

// MustParseString is ParseString that panics on error; for tests.
func MustParseString(s string) *Tree {
	t, err := ParseString(s)
	if err != nil {
		panic(err)
	}
	return t
}

func elemName(n xml.Name) string {
	if n.Space != "" {
		return n.Space + ":" + n.Local
	}
	return n.Local
}

// String serializes the tree as indented XML. Attributes print in
// sorted order so output is deterministic.
func (t *Tree) String() string {
	var b strings.Builder
	writeNode(&b, t.Root, 0)
	return b.String()
}

func writeNode(b *strings.Builder, n *Node, depth int) {
	indent := strings.Repeat("  ", depth)
	b.WriteString(indent)
	b.WriteByte('<')
	b.WriteString(n.Label)
	names := make([]string, 0, len(n.Attrs))
	for a := range n.Attrs {
		names = append(names, a)
	}
	sortStrings(names)
	for _, a := range names {
		fmt.Fprintf(b, " %s=\"%s\"", a, escapeAttr(n.Attrs[a]))
	}
	switch {
	case n.HasText:
		b.WriteByte('>')
		b.WriteString(escapeText(n.Text))
		fmt.Fprintf(b, "</%s>\n", n.Label)
	case len(n.Children) == 0:
		b.WriteString("/>\n")
	default:
		b.WriteString(">\n")
		for _, c := range n.Children {
			writeNode(b, c, depth+1)
		}
		fmt.Fprintf(b, "%s</%s>\n", indent, n.Label)
	}
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func escapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", `"`, "&quot;")
	return r.Replace(s)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
