package xnf

import (
	"sort"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/implication"
	"xmlnorm/internal/xfd"
)

// MinimalCover computes an equivalent, smaller FD set over the DTD: FDs
// are split to single right-hand sides, DTD-trivial FDs are dropped,
// extraneous left-hand-side paths are removed (a path is extraneous
// when the FD still follows from the full Σ without it), and FDs
// implied by the remaining ones are dropped. The result implies, and is
// implied by, the original Σ over the same DTD — the XML analogue of
// the relational minimal cover, decided with the Section 7 implication
// engine instead of Armstrong's axioms (which are unsound here; see the
// transitivity-with-nulls test in internal/implication).
//
// The result is a canonical cover: singleton right-hand sides, reduced
// left-hand sides, no duplicates, and a canonical order — FDs sorted by
// xfd.Compare — so the rendering is byte-stable across runs and across
// engine configurations. (The cover's *content* can still depend on the
// order Σ lists its FDs, as in the relational algorithm: reduction
// keeps the first of two interchangeable members.)
func MinimalCover(s Spec) ([]xfd.FD, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	fullEng, err := implication.NewEngine(s.DTD, s.FDs)
	if err != nil {
		return nil, err
	}
	trivEng, err := implication.NewEngine(s.DTD, nil)
	if err != nil {
		return nil, err
	}
	// Split and drop trivial FDs.
	var work []xfd.FD
	for _, f := range s.FDs {
		for _, single := range f.SingleRHS() {
			triv, err := trivEng.Implies(single)
			if err != nil {
				return nil, err
			}
			if triv.Implied {
				continue
			}
			work = append(work, single.Clone())
		}
	}
	// Remove extraneous LHS paths: shrinking is sound when the shrunk FD
	// still follows from the original Σ.
	for i := range work {
		for len(work[i].LHS) > 1 {
			removed := false
			for j := range work[i].LHS {
				smaller := xfd.FD{RHS: work[i].RHS}
				smaller.LHS = append(append([]dtd.Path{}, work[i].LHS[:j]...), work[i].LHS[j+1:]...)
				ans, err := fullEng.Implies(smaller)
				if err != nil {
					return nil, err
				}
				if ans.Implied {
					work[i] = smaller
					removed = true
					break
				}
			}
			if !removed {
				break
			}
		}
	}
	// Remove FDs implied by the rest (including duplicates).
	var out []xfd.FD
	for i := range work {
		rest := append(append([]xfd.FD{}, out...), work[i+1:]...)
		eng, err := implication.NewEngine(s.DTD, rest)
		if err != nil {
			return nil, err
		}
		ans, err := eng.Implies(work[i])
		if err != nil {
			return nil, err
		}
		if !ans.Implied {
			out = append(out, work[i])
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return xfd.Compare(out[i], out[j]) < 0 })
	return out, nil
}
