package xnf

import (
	"math/rand"
	"testing"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/implication"
	"xmlnorm/internal/xfd"
)

// TestMinimalCoverGoldenOrder pins the cover's rendering to the byte:
// repeated runs over one input must produce one string, and that string
// is the canonical xfd.Compare order, not Σ construction order.
func TestMinimalCoverGoldenOrder(t *testing.T) {
	s := coursesSpec(t)
	// Noise as in TestMinimalCoverCourses: a duplicate, a trivial FD,
	// and an implied multi-RHS FD.
	s.FDs = append(s.FDs,
		s.FDs[2].Clone(),
		xfd.MustParse("courses.course -> courses.course.@cno"),
		xfd.MustParse("courses.course.@cno -> courses.course.title, courses.course.title.S"),
	)
	// FD1 (@cno → course) is dropped as redundant here: the noise FD
	// @cno → title survives reduction, and title determines its parent
	// course structurally, so the rest implies FD1.
	const golden = "courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student\n" +
		"courses.course.@cno -> courses.course.title\n" +
		"courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name.S\n"
	for run := 0; run < 3; run++ {
		mc, err := MinimalCover(s)
		if err != nil {
			t.Fatal(err)
		}
		if got := xfd.FormatSet(mc); got != golden {
			t.Fatalf("run %d: cover rendering =\n%swant\n%s", run, got, golden)
		}
	}
}

// TestMinimalCoverOrderCanonical: whatever order Σ lists its FDs in,
// the cover comes back sorted by xfd.Compare (the content may differ
// between permutations when members are interchangeable; the ordering
// never does).
func TestMinimalCoverOrderCanonical(t *testing.T) {
	s := coursesSpec(t)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		perm := s.Clone()
		rng.Shuffle(len(perm.FDs), func(i, j int) { perm.FDs[i], perm.FDs[j] = perm.FDs[j], perm.FDs[i] })
		mc, err := MinimalCover(perm)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(mc); i++ {
			if xfd.Compare(mc[i-1], mc[i]) > 0 {
				t.Fatalf("trial %d: cover not in canonical order:\n%s", trial, xfd.FormatSet(mc))
			}
		}
	}
}

// coverDTD is the flat schema of the seeded equivalence suite: one
// repeated element with four attributes, six paths in all, so a closure
// run is microseconds and 1000 instances stay cheap.
var coverDTD = `
<!ELEMENT r (a*)>
<!ELEMENT a EMPTY>
<!ATTLIST a k CDATA #REQUIRED v CDATA #REQUIRED w CDATA #REQUIRED u CDATA #REQUIRED>`

// TestCanonicalCoverEquivalenceSeeded is the cover's contract, measured
// semantically: over 1000 seeded random Σ, the canonical cover and Σ
// imply each other over the same DTD, both directions decided by the
// implication engine (Armstrong-style syntactic equivalence is unsound
// with nulls, so nothing short of the engine counts as proof here).
func TestCanonicalCoverEquivalenceSeeded(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-instance sweep")
	}
	d := dtd.MustParse(coverDTD)
	ps, err := d.Paths()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(20020601))
	pick := func() dtd.Path { return ps[rng.Intn(len(ps))] }
	for instance := 0; instance < 1000; instance++ {
		var sigma []xfd.FD
		for n := 1 + rng.Intn(4); n > 0; n-- {
			f := xfd.FD{LHS: []dtd.Path{pick()}, RHS: []dtd.Path{pick()}}
			if rng.Intn(2) == 0 {
				f.LHS = append(f.LHS, pick())
			}
			if rng.Intn(3) == 0 {
				f.RHS = append(f.RHS, pick())
			}
			sigma = append(sigma, f)
		}
		s := Spec{DTD: d, FDs: sigma}
		mc, err := MinimalCover(s)
		if err != nil {
			t.Fatalf("instance %d: %v", instance, err)
		}
		coverEng, err := implication.NewEngine(d, mc)
		if err != nil {
			t.Fatalf("instance %d: %v", instance, err)
		}
		origEng, err := implication.NewEngine(d, sigma)
		if err != nil {
			t.Fatalf("instance %d: %v", instance, err)
		}
		for _, f := range sigma {
			ans, err := coverEng.Implies(f)
			if err != nil {
				t.Fatalf("instance %d: %v", instance, err)
			}
			if !ans.Implied {
				t.Fatalf("instance %d: cover %v does not imply original %s (Σ = %v)", instance, mc, f, sigma)
			}
		}
		for _, f := range mc {
			ans, err := origEng.Implies(f)
			if err != nil {
				t.Fatalf("instance %d: %v", instance, err)
			}
			if !ans.Implied {
				t.Fatalf("instance %d: Σ %v does not imply cover FD %s", instance, sigma, f)
			}
		}
	}
}
