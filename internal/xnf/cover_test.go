package xnf

import (
	"testing"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/implication"
	"xmlnorm/internal/xfd"
)

func TestMinimalCoverCourses(t *testing.T) {
	s := coursesSpec(t)
	// Add noise: a duplicate of FD3, a trivial FD, and a multi-RHS FD
	// implied by FD1 plus structure.
	s.FDs = append(s.FDs,
		s.FDs[2].Clone(),
		xfd.MustParse("courses.course -> courses.course.@cno"),
		xfd.MustParse("courses.course.@cno -> courses.course.title, courses.course.title.S"),
	)
	mc, err := MinimalCover(s)
	if err != nil {
		t.Fatal(err)
	}
	// The cover is exactly FD1, FD2, FD3 (as single-RHS FDs).
	if len(mc) != 3 {
		t.Fatalf("cover = %v, want 3 FDs", mc)
	}
	// Equivalence both ways.
	coverEng, err := implication.NewEngine(s.DTD, mc)
	if err != nil {
		t.Fatal(err)
	}
	origEng, err := implication.NewEngine(s.DTD, s.FDs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range s.FDs {
		ans, err := coverEng.Implies(f)
		if err != nil {
			t.Fatal(err)
		}
		if !ans.Implied {
			t.Errorf("cover does not imply original %s", f)
		}
	}
	for _, f := range mc {
		ans, err := origEng.Implies(f)
		if err != nil {
			t.Fatal(err)
		}
		if !ans.Implied {
			t.Errorf("original does not imply cover FD %s", f)
		}
	}
}

func TestMinimalCoverShrinksLHS(t *testing.T) {
	// The root on the LHS is always extraneous (it is shared by all
	// tuples).
	s := Spec{
		DTD: dtd.MustParse(`
<!ELEMENT r (a*)>
<!ELEMENT a EMPTY>
<!ATTLIST a k CDATA #REQUIRED v CDATA #REQUIRED>`),
		FDs: []xfd.FD{xfd.MustParse("r, r.a.@k -> r.a.@v")},
	}
	mc, err := MinimalCover(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc) != 1 || len(mc[0].LHS) != 1 || mc[0].LHS[0].String() != "r.a.@k" {
		t.Errorf("cover = %v, want the root dropped", mc)
	}
}

func TestMinimalCoverKeepsNeededPaths(t *testing.T) {
	// FD2's course path is NOT extraneous: sno alone does not identify
	// the student element.
	s := coursesSpec(t)
	mc, err := MinimalCover(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range mc {
		if f.RHS[0].String() == "courses.course.taken_by.student" && len(f.LHS) != 2 {
			t.Errorf("FD2 lost a needed LHS path: %s", f)
		}
	}
}

func TestMinimalCoverAllTrivial(t *testing.T) {
	s := Spec{
		DTD: dtd.MustParse(`<!ELEMENT r (a)><!ELEMENT a EMPTY><!ATTLIST a k CDATA #REQUIRED>`),
		FDs: []xfd.FD{
			xfd.MustParse("r -> r.a"),         // a occurs exactly once
			xfd.MustParse("r.a -> r.a.@k"),    // attributes are total
			xfd.MustParse("r.a.@k -> r.a.@k"), // reflexive
		},
	}
	mc, err := MinimalCover(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(mc) != 0 {
		t.Errorf("cover = %v, want empty (all trivial)", mc)
	}
}
