package xnf

import (
	"os"
	"path/filepath"
	"testing"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/xfd"
	"xmlnorm/internal/xmltree"
)

// Design studies on the real-world corpus: realistic FDs over
// simplified public DTDs, run through the full check → normalize →
// migrate pipeline.

func loadRealworld(t *testing.T, name string) *dtd.DTD {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("../../testdata/realworld", name))
	if err != nil {
		t.Fatal(err)
	}
	return dtd.MustParse(string(b))
}

// TestDesignStudyNewspaper: every article stores (date, edition) where
// the edition determines the date — the FD3 pattern on a real schema.
func TestDesignStudyNewspaper(t *testing.T) {
	s := Spec{
		DTD: loadRealworld(t, "newspaper.dtd"),
		FDs: []xfd.FD{
			xfd.MustParse("newspaper.article.@id -> newspaper.article"),
			xfd.MustParse("newspaper.article.@edition -> newspaper.article.@date"),
		},
	}
	ok, anomalies, err := Check(s)
	if err != nil {
		t.Fatal(err)
	}
	if ok || len(anomalies) != 1 {
		t.Fatalf("check = %v %v", ok, anomalies)
	}
	out, steps, err := Normalize(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, _, err = Check(out)
	if err != nil || !ok {
		t.Fatalf("normalized newspaper not in XNF: %v %v", ok, err)
	}
	// Dates now live once per edition in a new grouping element.
	doc := xmltree.MustParseString(`
<newspaper>
  <article id="a1" editor="ed" date="2026-07-07" edition="morning">
    <headline>H1</headline><byline>B</byline><lead>L</lead>
    <body><para>p</para></body>
  </article>
  <article id="a2" editor="ed" date="2026-07-07" edition="morning">
    <headline>H2</headline><byline>B</byline><lead>L</lead>
    <body><para>p</para></body>
  </article>
</newspaper>`)
	original := doc.Clone()
	before, err := MeasureRedundancy(s, doc)
	if err != nil {
		t.Fatal(err)
	}
	if before.Redundant != 1 {
		t.Errorf("redundancy before = %d, want 1", before.Redundant)
	}
	if err := ApplySteps(doc, steps); err != nil {
		t.Fatal(err)
	}
	if err := xmltree.ConformsUnordered(doc, out.DTD); err != nil {
		t.Errorf("migrated newspaper: %v", err)
	}
	if err := InvertSteps(doc, steps); err != nil {
		t.Fatal(err)
	}
	if !xmltree.Isomorphic(doc, original) {
		t.Error("newspaper round trip failed")
	}
}

// TestDesignStudyRSS: channel language is repeated on every item in a
// denormalized variant; the repaired design hoists it. Here we model it
// with an FD from the channel element to item-level metadata.
func TestDesignStudyRSS(t *testing.T) {
	d := loadRealworld(t, "rss091.dtd")
	// The stock RSS schema with key-style FDs only is already in XNF.
	s := Spec{
		DTD: d,
		FDs: []xfd.FD{
			xfd.MustParse("rss.channel.item.link.S -> rss.channel.item"),
		},
	}
	ok, anomalies, err := Check(s)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("plain RSS should be in XNF: %v", anomalies)
	}
	// A denormalized variant: every item's description starts with the
	// channel's language tag — channel determines item description
	// prefix; model as channel → item.title.S (all items share a title
	// prefix... keep it direct: channel element determines each item's
	// description string).
	s.FDs = append(s.FDs, xfd.MustParse("rss.channel -> rss.channel.item.description.S"))
	ok, anomalies, err = Check(s)
	if err != nil {
		t.Fatal(err)
	}
	if ok || len(anomalies) != 1 {
		t.Fatalf("denormalized RSS: %v %v", ok, anomalies)
	}
	out, steps, err := Normalize(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, _, err = Check(out)
	if err != nil || !ok {
		t.Fatalf("normalized RSS not in XNF: %v %v", ok, err)
	}
	if len(steps) != 1 {
		t.Fatalf("steps = %v", steps)
	}
	// The description moved out of item: item loses its description
	// child (text form) or the value hoists; either way the new DTD has
	// one fewer value position per item.
	if out.DTD.Element("item") == nil {
		t.Fatal("item vanished")
	}
}

// TestDesignStudyPlaylist: track albums with one id each; the album
// attribute pattern (track.@album determined by track.@id through the
// key) stays in XNF, while an artist-name FD breaks it.
func TestDesignStudyPlaylist(t *testing.T) {
	d := loadRealworld(t, "playlist.dtd")
	s := Spec{
		DTD: d,
		FDs: []xfd.FD{
			xfd.MustParse("playlist.trackList.track.@id -> playlist.trackList.track"),
		},
	}
	ok, _, err := Check(s)
	if err != nil || !ok {
		t.Fatalf("keyed playlist should be XNF: %v %v", ok, err)
	}
	// album determines... the location prefix per album: an FD from a
	// non-key attribute to another value = anomaly.
	s.FDs = append(s.FDs, xfd.MustParse("playlist.trackList.track.@album -> playlist.trackList.track.duration.S"))
	ok, _, err = Check(s)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("album → duration should be anomalous")
	}
	out, _, err := Normalize(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, anomalies, err := Check(out)
	if err != nil || !ok {
		t.Fatalf("normalized playlist not in XNF: %v %v %v", ok, anomalies, err)
	}
}
