package xnf

import (
	"fmt"
	"strings"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/paths"
	"xmlnorm/internal/tuples"
	"xmlnorm/internal/xmltree"
)

// DocStep transforms documents between the schemas on the two sides of
// one normalization step. Apply rewrites a document of the old DTD into
// one of the new DTD; Invert reconstructs the original (up to tree
// equivalence ≡) from a transformed document, witnessing losslessness
// (Proposition 8) constructively.
type DocStep interface {
	Apply(t *xmltree.Tree) error
	Invert(t *xmltree.Tree) error
	String() string
}

// MoveStep is the document counterpart of D[p.@l := q.@m]: every q node
// receives as @m the (unique, by the guarding FD q → S → p.@l) value of
// @l among its p descendants, and @l disappears from the p nodes.
type MoveStep struct {
	PAttr dtd.Path // the attribute path p.@l being moved
	Q     dtd.Path // the element path receiving the attribute
	M     string   // the new attribute name @m
}

func (m *MoveStep) String() string {
	return fmt.Sprintf("move %s to %s.@%s", m.PAttr, m.Q, m.M)
}

// Apply moves the attribute values up to the q nodes.
func (m *MoveStep) Apply(t *xmltree.Tree) error {
	l := strings.TrimPrefix(m.PAttr.Last(), "@")
	p := m.PAttr.Parent()
	qNodes := nodesAt(t, m.Q)
	for _, qn := range qNodes {
		descendants := nodesAtBelow(qn.node, qn.path, p)
		values := map[string]bool{}
		for _, dn := range descendants {
			if v, ok := dn.node.Attr(l); ok {
				values[v] = true
			}
		}
		if len(values) == 0 {
			return fmt.Errorf("xnf: %s node has no %s descendant to take @%s from", m.Q, p, l)
		}
		if len(values) > 1 {
			return fmt.Errorf("xnf: %s node has conflicting @%s values %v; the document violates the guarding FD", m.Q, l, keys(values))
		}
		for v := range values {
			qn.node.SetAttr(m.M, v)
		}
		for _, dn := range descendants {
			delete(dn.node.Attrs, l)
		}
	}
	return nil
}

// Invert copies @m back down to the p descendants and removes it from q.
func (m *MoveStep) Invert(t *xmltree.Tree) error {
	l := strings.TrimPrefix(m.PAttr.Last(), "@")
	p := m.PAttr.Parent()
	for _, qn := range nodesAt(t, m.Q) {
		v, ok := qn.node.Attr(m.M)
		if !ok {
			return fmt.Errorf("xnf: %s node missing @%s", m.Q, m.M)
		}
		for _, dn := range nodesAtBelow(qn.node, qn.path, p) {
			dn.node.SetAttr(l, v)
		}
		delete(qn.node.Attrs, m.M)
	}
	return nil
}

// CreateStep is the document counterpart of creating a new element type
// τ under q: for every q node, its subtree's (x1, ..., xn) ↦ v function
// from the LHS attribute values to the RHS value is materialized as τ
// children grouped by v, and the RHS value disappears from its old
// place.
type CreateStep struct {
	Q        dtd.Path   // grouping element path (the root path when the FD had no element path)
	LHSAttrs []dtd.Path // p1.@l1, ..., pn.@ln
	RHS      dtd.Path   // p.@l or p.S
	Tau      string     // the new element type
	Members  []string   // member element types, parallel to LHSAttrs
	TextForm bool       // RHS was p.S: the text element moves under τ
	// OptionalValue marks the paper's footnote case: the RHS can be ⊥
	// while the determinants are not, so a τ group may carry members
	// without a value ("no value" is information too).
	OptionalValue bool
}

func (c *CreateStep) String() string {
	return fmt.Sprintf("create %s under %s for %s", c.Tau, c.Q, c.RHS)
}

// absentValue is the internal grouping key for the footnote case: a
// determinant whose RHS value is ⊥. It cannot collide with document
// values because it is never compared against them (groups are keyed in
// a private map).
const absentValue = "\x00⊥"

// rhsCarrier returns the path whose nodes carry the RHS value: p for
// p.@l, and the text element p for p.S.
func (c *CreateStep) rhsCarrier() dtd.Path { return c.RHS.Parent() }

// Apply groups the values under fresh τ elements.
func (c *CreateStep) Apply(t *xmltree.Tree) error {
	// Project the document onto q, the LHS attributes and the RHS to
	// recover the (q node, x1..xn, v) associations tuple by tuple. The
	// path set is compiled once into a query-local universe; the
	// per-tuple work is then integer indexing.
	ps := append([]dtd.Path{c.Q}, c.LHSAttrs...)
	ps = append(ps, c.RHS)
	u := paths.ForQuery(ps)
	pr, err := tuples.NewProjector(u, ps)
	if err != nil {
		return err
	}
	qID, rhsID := u.MustLookup(c.Q), u.MustLookup(c.RHS)
	lhsIDs := make([]paths.ID, len(c.LHSAttrs))
	for i, lp := range c.LHSAttrs {
		lhsIDs[i] = u.MustLookup(lp)
	}
	detIDs := append([]paths.ID{qID}, lhsIDs...)

	index := nodeIndex(t)
	type group struct {
		values []map[string]bool // distinct xᵢ per dimension
	}
	perQ := map[xmltree.NodeID]map[string]*group{} // q node -> v -> group
	seenLHS := map[string]string{}                 // guarding-FD check: LHS values -> v
	var keyBuf []byte
	for _, tup := range pr.Of(t) {
		qv, ok := tup.GetID(qID)
		if !ok {
			continue
		}
		rv, hasRHS := tup.GetID(rhsID)
		if !hasRHS && !c.OptionalValue {
			continue // ⊥ RHS only arises in the footnote case
		}
		vKey := absentValue
		if hasRHS {
			vKey = rv.Str()
		}
		// The transformation is only information-preserving on documents
		// that satisfy the anomalous FD; detect violations instead of
		// silently splitting one determinant across two groups.
		if key, ok := lhsValueKey(tup, detIDs, keyBuf[:0]); ok {
			keyBuf = key
			if prev, dup := seenLHS[string(key)]; dup && prev != vKey {
				return fmt.Errorf("xnf: document violates the guarding FD: one determinant maps to %q and %q", prev, vKey)
			}
			seenLHS[string(key)] = vKey
		} else {
			keyBuf = key
		}
		byV := perQ[qv.Node()]
		if byV == nil {
			byV = map[string]*group{}
			perQ[qv.Node()] = byV
		}
		g := byV[vKey]
		if g == nil {
			g = &group{values: make([]map[string]bool, len(c.LHSAttrs))}
			for i := range g.values {
				g.values[i] = map[string]bool{}
			}
			byV[vKey] = g
		}
		for i, lid := range lhsIDs {
			if xv, ok := tup.GetID(lid); ok {
				g.values[i][xv.Str()] = true
			}
		}
	}

	// Remove the RHS value from its old position.
	if c.TextForm {
		e := c.rhsCarrier().Last()
		host := c.rhsCarrier().Parent()
		for _, hn := range nodesAt(t, host) {
			kept := hn.node.Children[:0]
			for _, ch := range hn.node.Children {
				if ch.Label != e {
					kept = append(kept, ch)
				}
			}
			hn.node.Children = kept
		}
	} else {
		l := strings.TrimPrefix(c.RHS.Last(), "@")
		for _, pn := range nodesAt(t, c.rhsCarrier()) {
			delete(pn.node.Attrs, l)
		}
	}

	// Attach τ groups.
	for qid, byV := range perQ {
		qn := index[qid]
		if qn == nil {
			return fmt.Errorf("xnf: q node #%d vanished", qid)
		}
		for _, v := range sortedKeys(byV) {
			g := byV[v]
			tau := xmltree.NewNode(c.Tau)
			for i, member := range c.Members {
				li := strings.TrimPrefix(c.LHSAttrs[i].Last(), "@")
				for _, x := range sortedSet(g.values[i]) {
					child := xmltree.NewNode(member)
					child.SetAttr(li, x)
					tau.Children = append(tau.Children, child)
				}
			}
			switch {
			case v == absentValue:
				// Footnote case: members without a value element.
			case c.TextForm:
				e := xmltree.NewNode(c.rhsCarrier().Last())
				e.SetText(v)
				tau.Children = append(tau.Children, e)
			default:
				tau.SetAttr(strings.TrimPrefix(c.RHS.Last(), "@"), v)
			}
			qn.Children = append(qn.Children, tau)
		}
	}
	return nil
}

// Invert reconstructs the RHS values at their original positions from
// the τ groups and removes the τ elements. Exact reconstruction is
// guaranteed for a single LHS attribute (the xᵢ ↦ v association is a
// function and each xᵢ occurs under exactly one τ); with several LHS
// attributes an ambiguous lookup is reported as an error rather than
// guessed (see DESIGN.md).
func (c *CreateStep) Invert(t *xmltree.Tree) error {
	// Build per-q lookup: value vector -> v.
	type lookup struct {
		dims    []map[string]string // per dimension: x -> v ("" conflict marker)
		only    string              // the single group's value, when there are no dimensions
		hasOnly bool
	}
	lookups := map[xmltree.NodeID]*lookup{}
	for _, qn := range nodesAt(t, c.Q) {
		lk := &lookup{dims: make([]map[string]string, len(c.Members))}
		for i := range lk.dims {
			lk.dims[i] = map[string]string{}
		}
		for _, tau := range qn.node.ChildrenLabelled(c.Tau) {
			var v string
			if c.TextForm {
				es := tau.ChildrenLabelled(c.rhsCarrier().Last())
				switch {
				case len(es) == 0 && c.OptionalValue:
					v = absentValue
				case len(es) == 1 && es[0].HasText:
					v = es[0].Text
				default:
					return fmt.Errorf("xnf: %s group without a unique %s child", c.Tau, c.rhsCarrier().Last())
				}
			} else {
				var ok bool
				v, ok = tau.Attr(strings.TrimPrefix(c.RHS.Last(), "@"))
				if !ok {
					return fmt.Errorf("xnf: %s group missing its value attribute", c.Tau)
				}
			}
			if len(c.Members) == 0 {
				if lk.hasOnly && lk.only != v {
					return fmt.Errorf("xnf: several %s groups with different values under one %s", c.Tau, c.Q)
				}
				lk.only, lk.hasOnly = v, true
			}
			for i, member := range c.Members {
				li := strings.TrimPrefix(c.LHSAttrs[i].Last(), "@")
				for _, mn := range tau.ChildrenLabelled(member) {
					x, ok := mn.Attr(li)
					if !ok {
						continue
					}
					if prev, dup := lk.dims[i][x]; dup && prev != v {
						if len(c.Members) == 1 {
							return fmt.Errorf("xnf: value %q appears under two %s groups", x, c.Tau)
						}
						lk.dims[i][x] = "" // ambiguous in this dimension alone
						continue
					}
					lk.dims[i][x] = v
				}
			}
		}
		lookups[qn.node.ID] = lk
		// Drop the τ children.
		kept := qn.node.Children[:0]
		for _, ch := range qn.node.Children {
			if ch.Label != c.Tau {
				kept = append(kept, ch)
			}
		}
		qn.node.Children = kept
	}

	// Re-attach values: associate each RHS carrier node with its LHS
	// values through the projections of the *transformed-minus-τ* tree.
	// In text form the carrier element was removed from its host, so the
	// host node is the projection target and the carrier is re-created
	// under it.
	target := c.rhsCarrier()
	if c.TextForm {
		target = target.Parent()
	}
	ps := append([]dtd.Path{c.Q}, c.LHSAttrs...)
	ps = append(ps, target)
	u := paths.ForQuery(ps)
	pr, err := tuples.NewProjector(u, ps)
	if err != nil {
		return err
	}
	qID, targetID := u.MustLookup(c.Q), u.MustLookup(target)
	lhsIDs := make([]paths.ID, len(c.LHSAttrs))
	for i, lp := range c.LHSAttrs {
		lhsIDs[i] = u.MustLookup(lp)
	}
	index := nodeIndex(t)
	for _, tup := range pr.Of(t) {
		qv, ok := tup.GetID(qID)
		if !ok {
			continue
		}
		carrier, ok := tup.GetID(targetID)
		if !ok {
			continue
		}
		lk := lookups[qv.Node()]
		if lk == nil {
			continue
		}
		v, found := "", false
		if len(c.LHSAttrs) == 0 {
			// No member dimensions: the q node's single group carries
			// the value for every carrier below it.
			v, found = lk.only, lk.hasOnly
		}
		for i, lid := range lhsIDs {
			xv, ok := tup.GetID(lid)
			if !ok {
				continue
			}
			cand, ok := lk.dims[i][xv.Str()]
			if !ok {
				continue
			}
			if cand == "" {
				return fmt.Errorf("xnf: ambiguous reconstruction for %s: value %q maps to several groups", c.RHS, xv.Str())
			}
			if found && cand != v {
				return fmt.Errorf("xnf: inconsistent reconstruction for %s", c.RHS)
			}
			v, found = cand, true
		}
		if !found {
			return fmt.Errorf("xnf: no %s value recoverable for a %s node", c.RHS, c.rhsCarrier())
		}
		if v == absentValue {
			continue // the original carried no value here
		}
		cn := index[carrier.Node()]
		if c.TextForm {
			e := xmltree.NewNode(c.rhsCarrier().Last())
			e.SetText(v)
			cn.Children = append(cn.Children, e)
		} else {
			cn.SetAttr(strings.TrimPrefix(c.RHS.Last(), "@"), v)
		}
	}
	return nil
}

// ApplySteps runs the document side of a normalization: it rewrites a
// document of the original DTD through every step's Apply, yielding a
// document of the normalized DTD.
func ApplySteps(t *xmltree.Tree, steps []Step) error {
	for _, s := range steps {
		if s.Doc == nil {
			return fmt.Errorf("xnf: step %v carries no document transformation", s.Kind)
		}
		if err := s.Doc.Apply(t); err != nil {
			return err
		}
	}
	return nil
}

// InvertSteps reconstructs the original document from a normalized one,
// applying the steps' inverses in reverse order.
func InvertSteps(t *xmltree.Tree, steps []Step) error {
	for i := len(steps) - 1; i >= 0; i-- {
		s := steps[i]
		if s.Doc == nil {
			return fmt.Errorf("xnf: step %v carries no document transformation", s.Kind)
		}
		if err := s.Doc.Invert(t); err != nil {
			return err
		}
	}
	return nil
}

// --- helpers ---

type located struct {
	node *xmltree.Node
	path dtd.Path
}

// nodesAt returns the nodes at an absolute path.
func nodesAt(t *xmltree.Tree, p dtd.Path) []located {
	if len(p) == 0 || t.Root.Label != p[0] {
		return nil
	}
	cur := []located{{t.Root, dtd.Path{t.Root.Label}}}
	for _, step := range p[1:] {
		var next []located
		for _, ln := range cur {
			for _, ch := range ln.node.ChildrenLabelled(step) {
				next = append(next, located{ch, ln.path.Child(step)})
			}
		}
		cur = next
	}
	return cur
}

// nodesAtBelow returns the nodes at absolute path target within the
// subtree rooted at (n, base), where base is a prefix of target.
func nodesAtBelow(n *xmltree.Node, base dtd.Path, target dtd.Path) []located {
	if !target.HasPrefix(base) {
		return nil
	}
	cur := []located{{n, base}}
	for _, step := range target[len(base):] {
		var next []located
		for _, ln := range cur {
			for _, ch := range ln.node.ChildrenLabelled(step) {
				next = append(next, located{ch, ln.path.Child(step)})
			}
		}
		cur = next
	}
	return cur
}

func nodeIndex(t *xmltree.Tree) map[xmltree.NodeID]*xmltree.Node {
	out := map[xmltree.NodeID]*xmltree.Node{}
	t.Walk(func(n *xmltree.Node, _ []string) bool {
		out[n.ID] = n
		return true
	})
	return out
}

func keys(m map[string]bool) []string {
	return sortedSet(m)
}

func sortedSet(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
