package xnf

import (
	"strings"
	"testing"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/xfd"
	"xmlnorm/internal/xmltree"
)

// Failure-injection tests: the document transformations must refuse
// documents that violate the guarding FDs instead of silently producing
// lossy output, and every error message must identify the problem.

func TestCreateStepRejectsFDViolation(t *testing.T) {
	s := coursesSpec(t)
	_, steps, err := Normalize(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// st1 with two different names across courses: FD3 violated.
	doc := xmltree.MustParseString(`
<courses>
  <course cno="c1"><title>A</title><taken_by>
    <student sno="st1"><name>Deere</name><grade>A</grade></student>
  </taken_by></course>
  <course cno="c2"><title>B</title><taken_by>
    <student sno="st1"><name>Doe</name><grade>B</grade></student>
  </taken_by></course>
</courses>`)
	err = ApplySteps(doc, steps)
	if err == nil {
		t.Fatal("FD-violating document accepted by the transformation")
	}
	if !strings.Contains(err.Error(), "guarding FD") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestInvertRejectsAmbiguousGroups(t *testing.T) {
	// A hand-corrupted normalized document: the same sno under two info
	// groups — reconstruction must refuse rather than guess.
	step := &CreateStep{
		Q:        dtd.MustParsePath("courses"),
		LHSAttrs: []dtd.Path{dtd.MustParsePath("courses.course.taken_by.student.@sno")},
		RHS:      dtd.MustParsePath("courses.course.taken_by.student.name.S"),
		Tau:      "info",
		Members:  []string{"number"},
		TextForm: true,
	}
	doc := xmltree.MustParseString(`
<courses>
  <course cno="c1"><title>T</title><taken_by>
    <student sno="st1"><grade>A</grade></student>
  </taken_by></course>
  <info><number sno="st1"/><name>Deere</name></info>
  <info><number sno="st1"/><name>Doe</name></info>
</courses>`)
	if err := step.Invert(doc); err == nil {
		t.Fatal("ambiguous groups accepted by reconstruction")
	}
}

func TestInvertRejectsMissingGroup(t *testing.T) {
	step := &CreateStep{
		Q:        dtd.MustParsePath("courses"),
		LHSAttrs: []dtd.Path{dtd.MustParsePath("courses.course.taken_by.student.@sno")},
		RHS:      dtd.MustParsePath("courses.course.taken_by.student.name.S"),
		Tau:      "info",
		Members:  []string{"number"},
		TextForm: true,
	}
	// st2 has no info group: its name is unrecoverable.
	doc := xmltree.MustParseString(`
<courses>
  <course cno="c1"><title>T</title><taken_by>
    <student sno="st2"><grade>A</grade></student>
  </taken_by></course>
  <info><number sno="st1"/><name>Deere</name></info>
</courses>`)
	err := step.Invert(doc)
	if err == nil || !strings.Contains(err.Error(), "recoverable") {
		t.Fatalf("missing group should fail clearly, got %v", err)
	}
}

func TestInvertRejectsMalformedGroups(t *testing.T) {
	step := &CreateStep{
		Q:        dtd.MustParsePath("r"),
		LHSAttrs: []dtd.Path{dtd.MustParsePath("r.item.@k")},
		RHS:      dtd.MustParsePath("r.item.@v"),
		Tau:      "grp",
		Members:  []string{"m"},
	}
	// Group without its value attribute.
	doc := xmltree.MustParseString(`<r><item k="1"/><grp><m k="1"/></grp></r>`)
	if err := step.Invert(doc); err == nil {
		t.Fatal("group without value attribute accepted")
	}
	// Text-form group without a unique text child.
	step2 := &CreateStep{
		Q:        dtd.MustParsePath("r"),
		LHSAttrs: []dtd.Path{dtd.MustParsePath("r.item.@k")},
		RHS:      dtd.MustParsePath("r.item.name.S"),
		Tau:      "grp",
		Members:  []string{"m"},
		TextForm: true,
	}
	doc2 := xmltree.MustParseString(`<r><item k="1"/><grp><m k="1"/></grp></r>`)
	if err := step2.Invert(doc2); err == nil {
		t.Fatal("group without text element accepted")
	}
}

func TestNormalizeRejectsRecursiveDTD(t *testing.T) {
	s := Spec{
		DTD: dtd.MustParse(`
<!ELEMENT r (part*)>
<!ELEMENT part (part2*)>
<!ATTLIST part k CDATA #REQUIRED v CDATA #REQUIRED>
<!ELEMENT part2 (part?)>`),
		FDs: []xfd.FD{xfd.MustParse("r.part.@k -> r.part.@v")},
	}
	if _, _, err := Normalize(s, Options{}); err == nil {
		t.Error("recursive DTD should be rejected")
	}
	if _, _, err := Check(s); err == nil {
		t.Error("recursive DTD should be rejected by Check")
	}
}

func TestNormalizeRejectsNonDisjunctive(t *testing.T) {
	s := Spec{
		DTD: dtd.MustParse(`
<!ELEMENT r (s*)>
<!ELEMENT s (a+ | b+)>
<!ATTLIST s k CDATA #REQUIRED v CDATA #REQUIRED>
<!ELEMENT a EMPTY>
<!ELEMENT b EMPTY>`),
		FDs: []xfd.FD{xfd.MustParse("r.s.@k -> r.s.@v")},
	}
	_, _, err := Check(s)
	if err == nil || !strings.Contains(err.Error(), "disjunctive") {
		t.Errorf("non-disjunctive DTD should fail with a pointer to BruteForce, got %v", err)
	}
}

func TestApplyStepsWithoutDoc(t *testing.T) {
	steps := []Step{{Kind: StepMoveAttribute}}
	doc := xmltree.MustParseString("<r/>")
	if err := ApplySteps(doc, steps); err == nil {
		t.Error("step without Doc should fail")
	}
	if err := InvertSteps(doc, steps); err == nil {
		t.Error("inverting step without Doc should fail")
	}
}

func TestMeasureRedundancyErrors(t *testing.T) {
	s := coursesSpec(t)
	s.FDs = append(s.FDs, xfd.FD{
		LHS: []dtd.Path{dtd.MustParsePath("courses.nope")},
		RHS: []dtd.Path{dtd.MustParsePath("courses")},
	})
	doc := xmltree.MustParseString(load(t, "courses.xml"))
	if _, err := MeasureRedundancy(s, doc); err == nil {
		t.Error("invalid FD path should surface")
	}
}
