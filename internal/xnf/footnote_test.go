package xnf

import (
	"testing"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/regex"
	"xmlnorm/internal/xfd"
	"xmlnorm/internal/xmltree"
)

// The paper's Section 6 footnote: "If ⊥ can be a value of p.@l in
// tuples(T), the definition must be modified slightly, by letting P'(τ)
// be τ1,...,τn,(τ'|ε)". These tests exercise the variant: a courses
// schema whose student name is *optional*, so some student numbers may
// have no name at all — which is information the grouping element must
// still represent.

func optionalNameSpec(t *testing.T) Spec {
	t.Helper()
	return Spec{
		DTD: dtd.MustParse(`
<!ELEMENT courses (course*)>
<!ELEMENT course (title, taken_by)>
<!ATTLIST course cno CDATA #REQUIRED>
<!ELEMENT title (#PCDATA)>
<!ELEMENT taken_by (student*)>
<!ELEMENT student (name?, grade)>
<!ATTLIST student sno CDATA #REQUIRED>
<!ELEMENT name (#PCDATA)>
<!ELEMENT grade (#PCDATA)>`),
		FDs: []xfd.FD{
			xfd.MustParse("courses.course.@cno -> courses.course"),
			xfd.MustParse("courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student"),
			xfd.MustParse("courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name.S"),
		},
	}
}

// TestFootnoteSchema: the create-element construction makes the moved
// element optional under τ when the carrier is optional.
func TestFootnoteSchema(t *testing.T) {
	s := optionalNameSpec(t)
	names := Names{Preferred: map[string]string{
		"tau:courses.course.taken_by.student.name.S":  "info",
		"member:courses.course.taken_by.student.@sno": "number",
	}}
	out, steps, err := Normalize(s, Options{Names: names})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 {
		t.Fatalf("steps = %v", steps)
	}
	info := out.DTD.Element("info")
	if info == nil {
		t.Fatalf("info missing:\n%s", out.DTD)
	}
	// P'(info) = (number*, name?) — the (τ'|ε) of the footnote.
	m := regex.Compile(info.Model)
	if !m.Match([]string{"number"}) {
		t.Errorf("info should allow a name-less group: P(info) = %s", info.Model)
	}
	if !m.Match([]string{"number", "name"}) {
		t.Errorf("info should still allow a named group: P(info) = %s", info.Model)
	}
	ok, anomalies, err := Check(out)
	if err != nil || !ok {
		t.Fatalf("footnote result not in XNF: %v %v", anomalies, err)
	}
}

// TestFootnoteDocuments: documents where some students lack a name
// migrate and reconstruct exactly.
func TestFootnoteDocuments(t *testing.T) {
	s := optionalNameSpec(t)
	out, steps, err := Normalize(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// st1 has a name (in both courses); st2 has none anywhere.
	doc := xmltree.MustParseString(`
<courses>
  <course cno="c1"><title>A</title><taken_by>
    <student sno="st1"><name>Deere</name><grade>A</grade></student>
    <student sno="st2"><grade>B</grade></student>
  </taken_by></course>
  <course cno="c2"><title>B</title><taken_by>
    <student sno="st1"><name>Deere</name><grade>C</grade></student>
    <student sno="st2"><grade>D</grade></student>
  </taken_by></course>
</courses>`)
	if !xfd.SatisfiesAll(doc, s.FDs) {
		t.Fatal("fixture must satisfy Σ (⊥ = ⊥ is agreement)")
	}
	original := doc.Clone()
	if err := ApplySteps(doc, steps); err != nil {
		t.Fatal(err)
	}
	if err := xmltree.ConformsUnordered(doc, out.DTD); err != nil {
		t.Errorf("migrated document does not conform: %v\n%s", err, doc)
	}
	if !xfd.SatisfiesAll(doc, out.FDs) {
		t.Error("migrated document violates Σ'")
	}
	if err := InvertSteps(doc, steps); err != nil {
		t.Fatal(err)
	}
	if !xmltree.Isomorphic(doc, original) {
		t.Errorf("footnote round trip failed:\ngot:\n%s\nwant:\n%s", doc, original)
	}
}

// TestFootnoteNotTriggeredWhenRequired: the original courses schema
// (name required) keeps the plain construction — the exact Figure 1(b)
// output must not regress.
func TestFootnoteNotTriggeredWhenRequired(t *testing.T) {
	s := coursesSpec(t)
	out, _, err := Normalize(s, Options{Names: Names{Preferred: map[string]string{
		"tau:courses.course.taken_by.student.name.S":  "info",
		"member:courses.course.taken_by.student.@sno": "number",
	}}})
	if err != nil {
		t.Fatal(err)
	}
	info := out.DTD.Element("info")
	// name is required inside info: a group without it must not match.
	if regex.Compile(info.Model).Match([]string{"number"}) {
		t.Errorf("required-name schema regressed to the optional form: %s", info.Model)
	}
}

// TestFootnoteAttributeFormRejected: the attribute-form variant of the
// footnote is reported, not silently mishandled.
func TestFootnoteAttributeFormRejected(t *testing.T) {
	s := Spec{
		DTD: dtd.MustParse(`
<!ELEMENT r (item*)>
<!ELEMENT item (meta?)>
<!ATTLIST item k CDATA #REQUIRED>
<!ELEMENT meta EMPTY>
<!ATTLIST meta v CDATA #REQUIRED>`),
		FDs: []xfd.FD{xfd.MustParse("r.item.@k -> r.item.meta.@v")},
	}
	_, err := CreateElement(s, s.FDs[0], Names{})
	if err == nil {
		t.Fatal("nullable attribute-form RHS should be rejected with the footnote pointer")
	}
}
