package xnf

import (
	"testing"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/xfd"
	"xmlnorm/internal/xmltree"
)

// TestLossless_University runs the full Figure 1 pipeline: the document
// of Figure 1(a) is transformed into (an ≡-equivalent of) the document
// of Figure 1(b) by the normalization's document transformation, and
// reconstructed exactly (Proposition 8).
func TestLossless_University(t *testing.T) {
	s := coursesSpec(t)
	names := Names{Preferred: map[string]string{
		"tau:courses.course.taken_by.student.name.S":  "info",
		"member:courses.course.taken_by.student.@sno": "number",
	}}
	out, steps, err := Normalize(s, Options{Names: names})
	if err != nil {
		t.Fatal(err)
	}
	doc := xmltree.MustParseString(load(t, "courses.xml"))
	original := doc.Clone()

	if err := ApplySteps(doc, steps); err != nil {
		t.Fatal(err)
	}
	// The transformed document is exactly Figure 1(b), as an unordered
	// tree.
	want := xmltree.MustParseString(load(t, "courses_xnf.xml"))
	if !xmltree.Isomorphic(doc, want) {
		t.Errorf("transformed document differs from Figure 1(b):\ngot:\n%s\nwant:\n%s", doc, want)
	}
	// It conforms to the new DTD (as an unordered tree) and satisfies
	// the new FDs.
	if err := xmltree.ConformsUnordered(doc, out.DTD); err != nil {
		t.Errorf("transformed document does not conform: %v", err)
	}
	if !xfd.SatisfiesAll(doc, out.FDs) {
		t.Error("transformed document violates the carried-over FDs")
	}
	// Reconstruction gives back the original document.
	if err := InvertSteps(doc, steps); err != nil {
		t.Fatal(err)
	}
	if !xmltree.Isomorphic(doc, original) {
		t.Errorf("reconstruction differs from the original:\ngot:\n%s\nwant:\n%s", doc, original)
	}
}

// TestLossless_DBLP: the move-attribute transformation on the DBLP
// document and its inverse.
func TestLossless_DBLP(t *testing.T) {
	s := dblpSpec(t)
	out, steps, err := Normalize(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc := xmltree.MustParseString(load(t, "dblp.xml"))
	original := doc.Clone()

	if err := ApplySteps(doc, steps); err != nil {
		t.Fatal(err)
	}
	if err := xmltree.ConformsUnordered(doc, out.DTD); err != nil {
		t.Errorf("transformed document does not conform: %v", err)
	}
	if !xfd.SatisfiesAll(doc, out.FDs) {
		t.Error("transformed document violates the carried-over FDs")
	}
	// Issues now carry the year.
	issues := doc.Root.Children[0].ChildrenLabelled("issue")
	if len(issues) != 2 {
		t.Fatalf("issues = %d", len(issues))
	}
	if y, _ := issues[0].Attr("year"); y != "2002" {
		t.Errorf("issue year = %q", y)
	}
	// Papers no longer do.
	for _, is := range issues {
		for _, p := range is.ChildrenLabelled("inproceedings") {
			if _, ok := p.Attr("year"); ok {
				t.Error("inproceedings kept its year attribute")
			}
		}
	}
	if err := InvertSteps(doc, steps); err != nil {
		t.Fatal(err)
	}
	if !xmltree.Isomorphic(doc, original) {
		t.Errorf("reconstruction differs from the original:\ngot:\n%s\nwant:\n%s", doc, original)
	}
}

// TestLossless_AttributeForm exercises the attribute-form create step
// (the paper's default formulation) end to end.
func TestLossless_AttributeForm(t *testing.T) {
	s := Spec{
		DTD: dtd.MustParse(`
<!ELEMENT r (emp*)>
<!ELEMENT emp EMPTY>
<!ATTLIST emp
    id CDATA #REQUIRED
    dept CDATA #REQUIRED
    dname CDATA #REQUIRED>`),
		FDs: []xfd.FD{
			xfd.MustParse("r.emp.@id -> r.emp"),
			xfd.MustParse("r.emp.@dept -> r.emp.@dname"),
		},
	}
	out, steps, err := Normalize(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ok, anomalies, err := Check(out)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("not in XNF: %v", anomalies)
	}
	doc := xmltree.MustParseString(`
<r>
  <emp id="1" dept="cs" dname="Computer Science"/>
  <emp id="2" dept="cs" dname="Computer Science"/>
  <emp id="3" dept="math" dname="Mathematics"/>
</r>`)
	original := doc.Clone()
	if err := ApplySteps(doc, steps); err != nil {
		t.Fatal(err)
	}
	if err := xmltree.ConformsUnordered(doc, out.DTD); err != nil {
		t.Errorf("transformed document does not conform: %v\n%s", err, doc)
	}
	if !xfd.SatisfiesAll(doc, out.FDs) {
		t.Error("transformed document violates Σ'")
	}
	// dname is now stored once per department.
	if got := countAttrs(doc, "dname"); got != 2 {
		t.Errorf("dname stored %d times, want 2\n%s", got, doc)
	}
	if err := InvertSteps(doc, steps); err != nil {
		t.Fatal(err)
	}
	if !xmltree.Isomorphic(doc, original) {
		t.Errorf("reconstruction differs:\ngot:\n%s\nwant:\n%s", doc, original)
	}
}

// TestMoveStepErrors: conflicting or missing values are reported.
func TestMoveStepErrors(t *testing.T) {
	step := &MoveStep{
		PAttr: dtd.MustParsePath("db.conf.issue.inproceedings.@year"),
		Q:     dtd.MustParsePath("db.conf.issue"),
		M:     "year",
	}
	// Conflicting years within one issue: the guarding FD is violated.
	bad := xmltree.MustParseString(`
<db><conf><title>X</title><issue>
  <inproceedings key="a" pages="1" year="2001"><author>A</author><title>t</title><booktitle>b</booktitle></inproceedings>
  <inproceedings key="b" pages="2" year="2002"><author>B</author><title>t</title><booktitle>b</booktitle></inproceedings>
</issue></conf></db>`)
	if err := step.Apply(bad); err == nil {
		t.Error("conflicting values should fail")
	}
	// No descendant to take the value from.
	empty := xmltree.MustParseString(`<db><conf><title>X</title><issue></issue></conf></db>`)
	if err := step.Apply(empty); err == nil {
		t.Error("missing descendant should fail")
	}
	// Invert on a document missing @m.
	noAttr := xmltree.MustParseString(`<db><conf><title>X</title><issue></issue></conf></db>`)
	if err := step.Invert(noAttr); err == nil {
		t.Error("missing @m should fail on inversion")
	}
}

func countAttrs(t *xmltree.Tree, name string) int {
	n := 0
	t.Walk(func(node *xmltree.Node, _ []string) bool {
		if _, ok := node.Attr(name); ok {
			n++
		}
		return true
	})
	return n
}

// TestLossless_SimplifiedVariant: the implication-free algorithm's
// steps also carry working document transformations.
func TestLossless_SimplifiedVariant(t *testing.T) {
	for _, fixture := range []struct {
		spec func(*testing.T) Spec
		doc  string
	}{
		{coursesSpec, "courses.xml"},
		{dblpSpec, "dblp.xml"},
	} {
		s := fixture.spec(t)
		out, steps, err := Normalize(s, Options{Simplified: true})
		if err != nil {
			t.Fatal(err)
		}
		doc := xmltree.MustParseString(load(t, fixture.doc))
		original := doc.Clone()
		if err := ApplySteps(doc, steps); err != nil {
			t.Fatalf("%s: apply: %v", fixture.doc, err)
		}
		if err := xmltree.ConformsUnordered(doc, out.DTD); err != nil {
			t.Errorf("%s: migrated document does not conform: %v", fixture.doc, err)
		}
		if !xfd.SatisfiesAll(doc, out.FDs) {
			t.Errorf("%s: migrated document violates Σ'", fixture.doc)
		}
		if err := InvertSteps(doc, steps); err != nil {
			t.Fatalf("%s: invert: %v", fixture.doc, err)
		}
		if !xmltree.Isomorphic(doc, original) {
			t.Errorf("%s: simplified-variant round trip failed", fixture.doc)
		}
	}
}
