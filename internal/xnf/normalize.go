package xnf

import (
	"fmt"
	"strings"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/engine"
	"xmlnorm/internal/paths"
	"xmlnorm/internal/xfd"
)

// StepKind identifies which transformation a normalization step applied.
type StepKind uint8

// Step kinds.
const (
	StepMoveAttribute StepKind = iota
	StepCreateElement
)

func (k StepKind) String() string {
	if k == StepMoveAttribute {
		return "move-attribute"
	}
	return "create-element"
}

// Step records one application of a transformation during
// normalization.
type Step struct {
	Kind    StepKind
	FD      xfd.FD   // the anomalous FD that triggered the step
	Detail  string   // human-readable description of the rewrite
	Dropped []xfd.FD // FDs that could not be carried to the new schema
	// Renames maps old dotted paths to their replacements in this step.
	Renames map[string]string
	// Doc transforms documents across this step (and back).
	Doc DocStep
}

// Options configures Normalize.
type Options struct {
	// Names controls the fresh element-type and attribute names.
	Names Names
	// MaxSteps caps the number of transformations (default 10·|Σ| + 10;
	// Proposition 6 guarantees each step reduces the anomalous paths, so
	// the cap only guards against bugs).
	MaxSteps int
	// Simplified selects the implication-free variant of Proposition 7:
	// only "creating element types" is applied, to anomalous members of
	// Σ, with no minimization. It still terminates with an XNF result
	// but may produce a less economical schema.
	Simplified bool
	// VerifySteps re-checks Proposition 6 at every step: the new spec
	// must validate and its anomalous-path count must strictly decrease.
	// Costs one extra XNF analysis per step; intended for tests and
	// paranoid pipelines.
	VerifySteps bool
	// Engine configures the implication engine (worker count, caching)
	// shared by the anomaly scan, minimization and move search of each
	// iteration. The zero value uses GOMAXPROCS workers with caching on.
	Engine engine.Options
}

// Normalize converts (D, Σ) into a specification in XNF by repeatedly
// applying the two transformations, following the decomposition
// algorithm of Figure 4: prefer moving an attribute when some element
// path q ∈ S determines the whole left-hand side, otherwise create a
// new element type for a (D, Σ)-minimal anomalous FD.
func Normalize(s Spec, opts Options) (Spec, []Step, error) {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 10*len(s.FDs) + 10
	}
	cur := s.Clone()
	var steps []Step
	for iter := 0; ; iter++ {
		if iter >= opts.MaxSteps {
			return Spec{}, steps, fmt.Errorf("xnf: normalization did not converge in %d steps", opts.MaxSteps)
		}
		if err := cur.Validate(); err != nil {
			return Spec{}, steps, err
		}
		// One cached engine serves this whole iteration: the anomaly
		// scan, every minimization probe, and the move search all query
		// the same (D, Σ) and overlap heavily.
		eng, err := engine.New(cur.DTD, cur.FDs, opts.Engine)
		if err != nil {
			return Spec{}, steps, err
		}
		anomalies, err := anomaliesWith(eng, cur.FDs)
		if err != nil {
			return Spec{}, steps, err
		}
		if len(anomalies) == 0 {
			return cur, steps, nil
		}
		// Figure 4 searches anomalous FDs in the *closure*; minimizing
		// each Σ anomaly first surfaces forms like {q} → p.@l on which
		// the cheaper move-attribute step applies (a shipment/lane
		// pattern reduces to the DBLP-style move this way).
		candidates := make([]Anomaly, len(anomalies))
		copy(candidates, anomalies)
		if !opts.Simplified {
			for i := range candidates {
				min, err := minimize(eng, candidates[i].FD)
				if err != nil {
					return Spec{}, steps, err
				}
				candidates[i] = Anomaly{FD: min, Target: min.RHS[0].Parent()}
			}
		}
		var step Step
		var res TransformResult
		applied := false
		if !opts.Simplified {
			res, step, applied, err = tryMove(cur, eng, candidates, opts.Names)
			if err != nil {
				return Spec{}, steps, err
			}
		}
		if !applied {
			anomaly := candidates[0].FD
			if err := normalFormOK(anomaly); err != nil {
				return Spec{}, steps, err
			}
			res, err = CreateElement(cur, anomaly, opts.Names)
			if err != nil {
				return Spec{}, steps, err
			}
			step = Step{
				Kind:   StepCreateElement,
				FD:     anomaly,
				Detail: fmt.Sprintf("created element type for %s: %s", anomaly.RHS[0], renameSummary(res.Renames)),
			}
		}
		step.Dropped = res.Dropped
		step.Renames = res.Renames
		step.Doc = res.Doc
		if opts.VerifySteps {
			if err := res.Spec.Validate(); err != nil {
				return Spec{}, steps, fmt.Errorf("xnf: step %d produced an invalid spec: %v", iter+1, err)
			}
			before, err := AnomalousPathsOpts(cur, opts.Engine)
			if err != nil {
				return Spec{}, steps, err
			}
			after, err := AnomalousPathsOpts(res.Spec, opts.Engine)
			if err != nil {
				return Spec{}, steps, err
			}
			if len(after) >= len(before) {
				return Spec{}, steps, fmt.Errorf("xnf: step %d did not reduce anomalous paths (%d → %d); Proposition 6 violated",
					iter+1, len(before), len(after))
			}
		}
		steps = append(steps, step)
		cur = res.Spec
	}
}

// tryMove looks for an anomalous FD S → p.@l with an element path q ∈ S
// such that q → S is implied, and applies the attribute move. Text
// right-hand sides are left to the create-element transformation.
func tryMove(s Spec, eng *engine.Engine, anomalies []Anomaly, names Names) (TransformResult, Step, bool, error) {
	for _, a := range anomalies {
		rhs := a.FD.RHS[0]
		if !rhs.IsAttr() {
			continue
		}
		for _, q := range lhsElemPaths(a.FD) {
			ans, err := eng.Implies(xfd.FD{LHS: []dtd.Path{q}, RHS: a.FD.LHS})
			if err != nil {
				return TransformResult{}, Step{}, false, err
			}
			if !ans.Implied {
				continue
			}
			l := strings.TrimPrefix(rhs.Last(), "@")
			qElem := s.DTD.Element(q.Last())
			m := names.fresh(func(n string) bool { return qElem.HasAttr(n) }, "attr:"+rhs.String(), l)
			res, err := MoveAttribute(s, rhs, q, m)
			if err != nil {
				return TransformResult{}, Step{}, false, err
			}
			step := Step{
				Kind:   StepMoveAttribute,
				FD:     a.FD,
				Detail: fmt.Sprintf("moved %s to %s.@%s", rhs, q, m),
			}
			return res, step, true, nil
		}
	}
	return TransformResult{}, Step{}, false, nil
}

// MinimizeAnomaly refines an anomalous FD to a (D, Σ)-minimal one —
// the refinement Normalize applies before choosing a transformation —
// without performing any rewrite. The analysis subsystem uses it to
// name the repair step an anomaly would trigger (minimal forms like
// {q} → p.@l are what make the cheaper move-attribute step apply).
func MinimizeAnomaly(eng *engine.Engine, f xfd.FD) (xfd.FD, error) {
	return minimize(eng, f)
}

// minimize refines an anomalous FD to a (D, Σ)-minimal one: while some
// strictly smaller anomalous FD exists over the definition's candidate
// paths, switch to it (Section 6). The engine's cache pays off here:
// different anomalies of one spec probe overlapping candidate subsets.
func minimize(eng *engine.Engine, f xfd.FD) (xfd.FD, error) {
	cur := f
	for depth := 0; depth < 20; depth++ {
		smaller, found, err := findSmallerAnomalous(eng, cur)
		if err != nil {
			return xfd.FD{}, err
		}
		if !found {
			return cur, nil
		}
		cur = smaller
	}
	return cur, nil
}

// findSmallerAnomalous searches the candidate space of the minimality
// definition: subsets S' of {q, p1, ..., pn, p0.@l0, ..., pn.@ln} with
// |S'| ≤ n and at most one element path, targeting any pᵢ.@lᵢ. The
// candidates are interned into the engine's path universe up front;
// the enumeration then manipulates integer IDs and tests membership on
// bitsets, rendering each subset back to paths only when it is about to
// be queried. The enumeration order is identical to the historical
// path-slice recursion.
func findSmallerAnomalous(eng *engine.Engine, f xfd.FD) (xfd.FD, bool, error) {
	u := eng.Universe()
	rhs := u.MustLookup(f.RHS[0])
	attrs := []paths.ID{rhs} // p0.@l0 (the RHS), then the LHS attribute paths
	var candidates []paths.ID
	for _, q := range lhsElemPaths(f) {
		candidates = append(candidates, u.MustLookup(q))
	}
	for _, p := range f.LHS {
		if !p.IsElem() {
			attrs = append(attrs, u.MustLookup(p))
			candidates = append(candidates, u.MustLookup(p.Parent())) // pᵢ
		}
	}
	candidates = append(candidates, attrs...)
	candidates = dedupIDs(u, candidates)
	n := len(attrs) - 1 // number of LHS attribute paths
	if n < 1 {
		return xfd.FD{}, false, nil
	}
	// Enumerate subsets of size ≤ n with ≤ 1 element path.
	var subsets [][]paths.ID
	var rec func(i int, cur []paths.ID, epaths int)
	rec = func(i int, cur []paths.ID, epaths int) {
		if len(cur) > 0 {
			subsets = append(subsets, append([]paths.ID(nil), cur...))
		}
		if i == len(candidates) || len(cur) == n {
			return
		}
		for j := i; j < len(candidates); j++ {
			e := epaths
			if u.KindOf(candidates[j]) == paths.ElemKind {
				e++
				if e > 1 {
					continue
				}
			}
			next := make([]paths.ID, len(cur)+1)
			copy(next, cur)
			next[len(cur)] = candidates[j]
			rec(j+1, next, e)
		}
	}
	rec(0, nil, 0)
	for _, sp := range subsets {
		spSet := u.SetOf(sp...)
		for _, target := range attrs {
			cand := xfd.FD{LHS: idPaths(u, sp), RHS: []dtd.Path{u.PathOf(target)}}
			_ = cand.Resolve(u) // candidate paths come from the universe; always succeeds
			if cand.Equal(f) || spSet.Has(target) {
				continue
			}
			ans, err := eng.Implies(cand)
			if err != nil {
				return xfd.FD{}, false, err
			}
			if !ans.Implied {
				continue
			}
			trivial, err := eng.Trivial(cand)
			if err != nil {
				return xfd.FD{}, false, err
			}
			if trivial {
				continue
			}
			// Anomalous: S' must not determine the parent element.
			parent, err := eng.Implies(xfd.FD{LHS: cand.LHS, RHS: []dtd.Path{u.PathOf(u.ParentOf(target))}})
			if err != nil {
				return xfd.FD{}, false, err
			}
			if parent.Implied {
				continue
			}
			return cand, true, nil
		}
	}
	return xfd.FD{}, false, nil
}

// dedupIDs keeps the first occurrence of each interned path, tracking
// seen IDs in a bitset.
func dedupIDs(u *paths.Universe, ids []paths.ID) []paths.ID {
	seen := u.NewSet()
	var out []paths.ID
	for _, id := range ids {
		if seen.Has(id) {
			continue
		}
		seen.Add(id)
		out = append(out, id)
	}
	return out
}

// idPaths renders interned IDs back to paths.
func idPaths(u *paths.Universe, ids []paths.ID) []dtd.Path {
	out := make([]dtd.Path, len(ids))
	for i, id := range ids {
		out[i] = u.PathOf(id)
	}
	return out
}

func renameSummary(renames map[string]string) string {
	var parts []string
	for from, to := range renames {
		parts = append(parts, fmt.Sprintf("%s → %s", from, to))
	}
	// Deterministic order for logs.
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return strings.Join(parts, ", ")
}
