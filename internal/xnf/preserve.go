package xnf

import (
	"xmlnorm/internal/implication"
	"xmlnorm/internal/xfd"
)

// Dependency preservation: after a decomposition, which of the original
// constraints can still be stated (after rewriting paths along the
// transformations) and are enforced by the new specification? This is
// the XML analogue of relational dependency preservation. BCNF-style
// decompositions do not guarantee it in the relational world; the
// paper's transformations do carry the anomalous FD's information into
// structure (where it becomes trivial) or into the new element's keys,
// so on well-behaved inputs everything is preserved — the report makes
// this checkable instead of assumed.

// PreservedFD pairs an original FD with its rewriting over the new DTD.
type PreservedFD struct {
	Original  xfd.FD
	Rewritten xfd.FD
	// Trivial is set when the rewritten FD follows from the new DTD
	// alone (like issue → issue.@year after the DBLP move).
	Trivial bool
}

// Preservation is the report of CheckPreservation.
type Preservation struct {
	Preserved []PreservedFD
	// Lost are original FDs whose rewriting is not a valid FD over the
	// new DTD, or is not implied by the new specification.
	Lost []xfd.FD
}

// OK reports full preservation.
func (p Preservation) OK() bool { return len(p.Lost) == 0 }

// CheckPreservation rewrites each original FD through the steps'
// accumulated path renames and tests whether the new specification
// implies it.
func CheckPreservation(orig, norm Spec, steps []Step) (Preservation, error) {
	renames := composeRenames(steps)
	eng, err := implication.NewEngine(norm.DTD, norm.FDs)
	if err != nil {
		return Preservation{}, err
	}
	trivEng, err := implication.NewEngine(norm.DTD, nil)
	if err != nil {
		return Preservation{}, err
	}
	var rep Preservation
	for _, f := range orig.FDs {
		// A transformation's rename map covers every path it *relates*
		// to the new schema, including paths that also survive verbatim
		// (the pᵢ of the create-element construction). Try the FD
		// unchanged first; only paths that actually disappeared need
		// their rewriting.
		candidates := []xfd.FD{f, rewriteFD(f, renames)}
		found := false
		for _, rw := range candidates {
			if err := rw.Validate(norm.DTD); err != nil {
				continue
			}
			ans, err := eng.Implies(rw)
			if err != nil {
				return Preservation{}, err
			}
			if !ans.Implied {
				continue
			}
			triv, err := trivEng.Implies(rw)
			if err != nil {
				return Preservation{}, err
			}
			rep.Preserved = append(rep.Preserved, PreservedFD{
				Original: f, Rewritten: rw, Trivial: triv.Implied,
			})
			found = true
			break
		}
		if !found {
			rep.Lost = append(rep.Lost, f)
		}
	}
	return rep, nil
}

// composeRenames chains the per-step rename maps: a path renamed by step
// i may be renamed again by step j > i.
func composeRenames(steps []Step) map[string]string {
	composed := map[string]string{}
	for _, st := range steps {
		if st.Renames == nil {
			continue
		}
		// Update existing targets first.
		for from, to := range composed {
			if next, ok := st.Renames[to]; ok {
				composed[from] = next
			}
		}
		// Then add this step's fresh renames.
		for from, to := range st.Renames {
			if _, ok := composed[from]; !ok {
				composed[from] = to
			}
		}
	}
	return composed
}
