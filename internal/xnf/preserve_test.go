package xnf

import (
	"testing"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/xfd"
)

// TestPreservationUniversity: all three FDs of Example 1.1 survive the
// normalization — FD1 and FD2 verbatim, FD3 rewritten onto the info
// element.
func TestPreservationUniversity(t *testing.T) {
	s := coursesSpec(t)
	out, steps, err := Normalize(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckPreservation(s, out, steps)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("lost FDs: %v", rep.Lost)
	}
	if len(rep.Preserved) != 3 {
		t.Fatalf("preserved = %d, want 3", len(rep.Preserved))
	}
	// FD3's rewriting targets the new grouping element.
	var fd3 *PreservedFD
	for i := range rep.Preserved {
		if rep.Preserved[i].Original.Equal(s.FDs[2]) {
			fd3 = &rep.Preserved[i]
		}
	}
	if fd3 == nil {
		t.Fatal("FD3 not in report")
	}
	if fd3.Rewritten.Equal(fd3.Original) {
		t.Error("FD3 should have been rewritten")
	}
}

// TestPreservationDBLP: FD5 becomes the trivial issue → issue.@year.
func TestPreservationDBLP(t *testing.T) {
	s := dblpSpec(t)
	out, steps, err := Normalize(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckPreservation(s, out, steps)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("lost FDs: %v", rep.Lost)
	}
	trivialCount := 0
	for _, p := range rep.Preserved {
		if p.Trivial {
			trivialCount++
			if got := p.Rewritten.String(); got != "db.conf.issue -> db.conf.issue.@year" {
				t.Errorf("trivialized FD = %q", got)
			}
		}
	}
	if trivialCount != 1 {
		t.Errorf("trivialized FDs = %d, want 1 (FD5)", trivialCount)
	}
}

// TestPreservationLoss: an FD over a second occurrence of the moved
// attribute's element type is genuinely lost (its path disappears from
// the new DTD without a rewriting) and the report says so.
func TestPreservationLoss(t *testing.T) {
	// "meta" occurs under both item and box; moving @v away from meta
	// (driven by the anomaly under item) kills box.meta.@v too.
	s := Spec{
		DTD: dtd.MustParse(`
<!ELEMENT r (item*, box*)>
<!ELEMENT item (meta)>
<!ATTLIST item k CDATA #REQUIRED>
<!ELEMENT box (meta)>
<!ATTLIST box b CDATA #REQUIRED>
<!ELEMENT meta EMPTY>
<!ATTLIST meta v CDATA #REQUIRED>`),
		FDs: []xfd.FD{
			xfd.MustParse("r.item.@k -> r.item.meta.@v"),
			xfd.MustParse("r.box.meta.@v -> r.box"),
		},
	}
	out, steps, err := Normalize(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckPreservation(s, out, steps)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("expected a lost FD; preserved: %+v", rep.Preserved)
	}
	if len(rep.Lost) != 1 || !rep.Lost[0].Equal(s.FDs[1]) {
		t.Errorf("lost = %v, want the box FD", rep.Lost)
	}
	// The steps recorded the drop as well.
	dropped := 0
	for _, st := range steps {
		dropped += len(st.Dropped)
	}
	if dropped == 0 {
		t.Error("steps did not record the dropped FD")
	}
}

func TestComposeRenames(t *testing.T) {
	steps := []Step{
		{Renames: map[string]string{"a.x": "a.y"}},
		{Renames: map[string]string{"a.y": "a.z", "b.p": "b.q"}},
	}
	got := composeRenames(steps)
	if got["a.x"] != "a.z" {
		t.Errorf("chained rename = %q, want a.z", got["a.x"])
	}
	if got["b.p"] != "b.q" {
		t.Errorf("fresh rename = %q", got["b.p"])
	}
	if got["a.y"] != "a.z" {
		t.Errorf("intermediate rename = %q", got["a.y"])
	}
}
