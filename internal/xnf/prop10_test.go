package xnf_test

import (
	"math/rand"
	"testing"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/gen"
	"xmlnorm/internal/implication"
	"xmlnorm/internal/xfd"
	"xmlnorm/internal/xnf"
)

// TestProposition10 validates the reduction the XNF checker relies on:
// for a relational DTD, (D, Σ) is in XNF iff every non-trivial
// attribute/text-RHS FD *in Σ* satisfies the XNF condition — i.e.
// checking Σ members is as good as checking the whole implied closure.
// The test samples implied FDs beyond Σ (random candidate LHS sets over
// the DTD's paths, filtered by the implication engine) and verifies
// that whenever the Σ-based check says "in XNF", none of the sampled
// implied FDs is anomalous.
func TestProposition10(t *testing.T) {
	if testing.Short() {
		t.Skip("implication sampling")
	}
	rng := rand.New(rand.NewSource(1010))
	checkedSpecs, sampledImplied := 0, 0
	for trial := 0; trial < 30; trial++ {
		depth := 2 + rng.Intn(3)
		spec := xnf.Spec{DTD: gen.ChainDTD(depth, 2), FDs: gen.ChainFDs(depth, 2)}
		if rng.Intn(2) == 0 {
			// Normalize half of them so both verdicts appear.
			out, _, err := xnf.Normalize(spec, xnf.Options{})
			if err != nil {
				t.Fatal(err)
			}
			spec = out
		}
		inXNF, _, err := xnf.Check(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !inXNF {
			continue // the claim to probe is the "in XNF" direction
		}
		checkedSpecs++
		eng, err := implication.NewEngine(spec.DTD, spec.FDs)
		if err != nil {
			t.Fatal(err)
		}
		trivEng, err := implication.NewEngine(spec.DTD, nil)
		if err != nil {
			t.Fatal(err)
		}
		paths, err := spec.DTD.Paths()
		if err != nil {
			t.Fatal(err)
		}
		var valuePaths []dtd.Path
		for _, p := range paths {
			if !p.IsElem() {
				valuePaths = append(valuePaths, p)
			}
		}
		// Sample candidate FDs S → p.@l with S of size 1-2.
		for i := 0; i < 120; i++ {
			var cand xfd.FD
			cand.LHS = []dtd.Path{paths[rng.Intn(len(paths))]}
			if rng.Intn(2) == 0 {
				cand.LHS = append(cand.LHS, paths[rng.Intn(len(paths))])
			}
			cand.RHS = []dtd.Path{valuePaths[rng.Intn(len(valuePaths))]}
			ans, err := eng.Implies(cand)
			if err != nil {
				t.Fatal(err)
			}
			if !ans.Implied {
				continue
			}
			triv, err := trivEng.Implies(cand)
			if err != nil {
				t.Fatal(err)
			}
			if triv.Implied {
				continue
			}
			sampledImplied++
			// Implied and non-trivial: the XNF condition must hold.
			parent, err := eng.Implies(xfd.FD{LHS: cand.LHS, RHS: []dtd.Path{cand.RHS[0].Parent()}})
			if err != nil {
				t.Fatal(err)
			}
			if !parent.Implied {
				t.Errorf("spec declared in XNF but implied FD %s is anomalous", cand)
			}
		}
	}
	if checkedSpecs < 5 || sampledImplied < 25 {
		t.Fatalf("weak sample: %d specs, %d implied FDs", checkedSpecs, sampledImplied)
	}
	t.Logf("verified %d implied non-trivial FDs across %d XNF specs", sampledImplied, checkedSpecs)
}
