package xnf_test

// External test package: the generators in internal/gen import packages
// that (indirectly) build on xnf's dependencies, so the property tests
// live outside to keep imports acyclic.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/gen"
	"xmlnorm/internal/xfd"
	"xmlnorm/internal/xmltree"
	"xmlnorm/internal/xnf"
)

// randomChainSpec builds a chain spec of random depth with the FD3
// pattern, plus optionally extra random value FDs.
func randomChainSpec(seed uint64) xnf.Spec {
	rng := rand.New(rand.NewSource(int64(seed)))
	depth := 2 + rng.Intn(4)
	s := xnf.Spec{DTD: gen.ChainDTD(depth, 2), FDs: gen.ChainFDs(depth, 2)}
	// Occasionally add a cross-level FD: a deep attribute determines a
	// shallow one.
	if rng.Intn(2) == 0 && depth >= 3 {
		paths := gen.ChainPaths(depth)
		deep := paths[depth].Child(fmt.Sprintf("@a%d_0", depth))
		shallow := paths[2].Child("@a2_1")
		s.FDs = append(s.FDs, xfd.FD{LHS: []dtd.Path{deep}, RHS: []dtd.Path{shallow}})
	}
	return s
}

// TestQuickNormalizeReachesXNF: Normalize always terminates with a spec
// that passes the XNF check, in both variants.
func TestQuickNormalizeReachesXNF(t *testing.T) {
	if testing.Short() {
		t.Skip("normalization sweep")
	}
	f := func(seed uint64, simplified bool) bool {
		s := randomChainSpec(seed)
		out, steps, err := xnf.Normalize(s, xnf.Options{Simplified: simplified})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		ok, anomalies, err := xnf.Check(out)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !ok {
			t.Logf("seed %d: %d steps but still anomalous: %v", seed, len(steps), anomalies)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickLosslessRoundTrip: documents generated for the chain family
// survive transform + reconstruct across the normalization steps.
func TestQuickLosslessRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("normalization sweep")
	}
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		depth := 2 + rng.Intn(3)
		s := xnf.Spec{DTD: gen.ChainDTD(depth, 2), FDs: gen.ChainFDs(depth, 2)}
		_, steps, err := xnf.Normalize(s, xnf.Options{})
		if err != nil {
			return false
		}
		doc := gen.ChainDocument(depth, rng)
		if err := xmltree.Conforms(doc, s.DTD); err != nil {
			t.Logf("generated doc invalid: %v", err)
			return false
		}
		if !xfd.SatisfiesAll(doc, s.FDs) {
			return true // only FD-satisfying documents are migratable
		}
		original := doc.Clone()
		if err := xnf.ApplySteps(doc, steps); err != nil {
			t.Logf("seed %d apply: %v", seed, err)
			return false
		}
		if err := xnf.InvertSteps(doc, steps); err != nil {
			t.Logf("seed %d invert: %v", seed, err)
			return false
		}
		if !xmltree.Isomorphic(doc, original) {
			t.Logf("seed %d: round trip changed document", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestQuickCheckDeterministic: the XNF check gives the same verdict on
// repeated runs and on a cloned spec.
func TestQuickCheckDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		s := randomChainSpec(seed)
		a, _, err1 := xnf.Check(s)
		b, _, err2 := xnf.Check(s.Clone())
		if err1 != nil || err2 != nil {
			return false
		}
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickRedundancyNonNegative: measured redundancy is never negative
// and zero whenever the spec is in XNF.
func TestQuickRedundancyNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		depth := 2 + rng.Intn(3)
		s := xnf.Spec{DTD: gen.ChainDTD(depth, 2), FDs: gen.ChainFDs(depth, 2)}
		doc := gen.ChainDocument(depth, rng)
		rep, err := xnf.MeasureRedundancy(s, doc)
		if err != nil {
			return false
		}
		if rep.Redundant < 0 {
			return false
		}
		for _, r := range rep.PerFD {
			if r.Redundant < 0 || r.Occurrences < r.Groups && r.Redundant != 0 {
				return false
			}
			if !strings.Contains(r.FD, "->") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
