package xnf

import (
	"encoding/binary"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/paths"
	"xmlnorm/internal/tuples"
	"xmlnorm/internal/xmltree"
)

// FDRedundancy quantifies the redundancy one anomalous FD causes in a
// document: the value determined by the left-hand side is stored once
// per carrier node, but only one copy per distinct LHS value is
// information.
type FDRedundancy struct {
	FD          string // the anomalous FD
	Occurrences int    // carrier nodes storing the determined value
	Groups      int    // distinct LHS value combinations
	Redundant   int    // Occurrences - Groups
}

// RedundancyReport aggregates FDRedundancy over all anomalies of a
// specification, reproducing the paper's motivation: "the name Deere
// for student st1 is stored twice".
type RedundancyReport struct {
	PerFD     []FDRedundancy
	Redundant int // total redundant stored values
}

// MeasureRedundancy counts, for each anomalous FD of the specification,
// how many stored copies of the determined value the document carries
// beyond one per distinct left-hand side. Each anomaly compiles its
// path set into a query-local universe once; the per-tuple work is then
// integer lookups and an allocation-free binary group key.
func MeasureRedundancy(s Spec, t *xmltree.Tree) (RedundancyReport, error) {
	anomalies, err := Anomalies(s)
	if err != nil {
		return RedundancyReport{}, err
	}
	var rep RedundancyReport
	for _, a := range anomalies {
		rhs := a.FD.RHS[0]
		carrier := rhs.Parent() // the node storing the value
		ps := append(append([]dtd.Path{}, a.FD.LHS...), rhs, carrier)
		u := paths.ForQuery(ps)
		pr, err := tuples.NewProjector(u, ps)
		if err != nil {
			return RedundancyReport{}, err
		}
		rhsID, carrierID := u.MustLookup(rhs), u.MustLookup(carrier)
		lhsIDs := make([]paths.ID, len(a.FD.LHS))
		for i, p := range a.FD.LHS {
			lhsIDs[i] = u.MustLookup(p)
		}
		carriers := map[xmltree.NodeID]bool{}
		groups := map[string]bool{}
		var buf []byte
		// Stream the projections instead of materializing them: the
		// aggregation is two set inserts per tuple, so the stream's
		// (harmless) duplicates cost nothing and the tuple product is
		// never built.
		pr.Stream(t, func(tup tuples.Tuple) bool {
			cv, ok := tup.GetID(carrierID)
			if !ok {
				return true
			}
			if _, ok := tup.GetID(rhsID); !ok {
				return true
			}
			key, ok := lhsValueKey(tup, lhsIDs, buf[:0])
			buf = key
			if !ok {
				return true
			}
			carriers[cv.Node()] = true
			groups[string(key)] = true
			return true
		})
		r := FDRedundancy{
			FD:          a.FD.String(),
			Occurrences: len(carriers),
			Groups:      len(groups),
		}
		if r.Occurrences > r.Groups {
			r.Redundant = r.Occurrences - r.Groups
		}
		rep.PerFD = append(rep.PerFD, r)
		rep.Redundant += r.Redundant
	}
	return rep, nil
}

// lhsValueKey appends a self-delimiting binary rendering of the tuple's
// LHS values to dst: node values by vertex id, string values
// length-prefixed, each behind a type tag. Distinct value combinations
// get distinct keys (unlike a separator-joined string, which a value
// containing the separator could forge).
func lhsValueKey(t tuples.Tuple, lhs []paths.ID, dst []byte) ([]byte, bool) {
	for _, id := range lhs {
		v, ok := t.GetID(id)
		if !ok {
			return dst, false
		}
		if v.IsNode() {
			dst = append(dst, 1)
			dst = binary.AppendUvarint(dst, uint64(v.Node()))
		} else {
			s := v.Str()
			dst = append(dst, 2)
			dst = binary.AppendUvarint(dst, uint64(len(s)))
			dst = append(dst, s...)
		}
	}
	return dst, true
}
