package xnf

import (
	"fmt"
	"strings"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/tuples"
	"xmlnorm/internal/xmltree"
)

// FDRedundancy quantifies the redundancy one anomalous FD causes in a
// document: the value determined by the left-hand side is stored once
// per carrier node, but only one copy per distinct LHS value is
// information.
type FDRedundancy struct {
	FD          string // the anomalous FD
	Occurrences int    // carrier nodes storing the determined value
	Groups      int    // distinct LHS value combinations
	Redundant   int    // Occurrences - Groups
}

// RedundancyReport aggregates FDRedundancy over all anomalies of a
// specification, reproducing the paper's motivation: "the name Deere
// for student st1 is stored twice".
type RedundancyReport struct {
	PerFD     []FDRedundancy
	Redundant int // total redundant stored values
}

// MeasureRedundancy counts, for each anomalous FD of the specification,
// how many stored copies of the determined value the document carries
// beyond one per distinct left-hand side.
func MeasureRedundancy(s Spec, t *xmltree.Tree) (RedundancyReport, error) {
	anomalies, err := Anomalies(s)
	if err != nil {
		return RedundancyReport{}, err
	}
	var rep RedundancyReport
	for _, a := range anomalies {
		rhs := a.FD.RHS[0]
		carrier := rhs.Parent() // the node storing the value
		paths := append(append([]dtd.Path{}, a.FD.LHS...), rhs, carrier)
		carriers := map[xmltree.NodeID]bool{}
		groups := map[string]bool{}
		for _, tup := range tuples.Projections(t, paths) {
			cv, ok := tup.Get(carrier)
			if !ok {
				continue
			}
			if _, ok := tup.Get(rhs); !ok {
				continue
			}
			key, ok := lhsValueKey(tup, a.FD.LHS)
			if !ok {
				continue
			}
			carriers[cv.Node()] = true
			groups[key] = true
		}
		r := FDRedundancy{
			FD:          a.FD.String(),
			Occurrences: len(carriers),
			Groups:      len(groups),
		}
		if r.Occurrences > r.Groups {
			r.Redundant = r.Occurrences - r.Groups
		}
		rep.PerFD = append(rep.PerFD, r)
		rep.Redundant += r.Redundant
	}
	return rep, nil
}

func lhsValueKey(t tuples.Tuple, lhs []dtd.Path) (string, bool) {
	var b strings.Builder
	for _, p := range lhs {
		v, ok := t.Get(p)
		if !ok {
			return "", false
		}
		fmt.Fprintf(&b, "%s|", v)
	}
	return b.String(), true
}
