package xnf

import (
	"testing"

	"xmlnorm/internal/xmltree"
)

// TestRedundancyFigure1: in the document of Figure 1(a), "the name
// Deere for student st1 is stored twice" — one redundant copy.
func TestRedundancyFigure1(t *testing.T) {
	s := coursesSpec(t)
	doc := xmltree.MustParseString(load(t, "courses.xml"))
	rep, err := MeasureRedundancy(s, doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerFD) != 1 {
		t.Fatalf("per-FD entries = %d, want 1 (only FD3 is anomalous)", len(rep.PerFD))
	}
	r := rep.PerFD[0]
	// 4 name elements, 3 distinct student numbers: 1 redundant copy
	// (Deere for st1).
	if r.Occurrences != 4 || r.Groups != 3 || r.Redundant != 1 {
		t.Errorf("redundancy = %+v, want 4 occurrences, 3 groups, 1 redundant", r)
	}
	if rep.Redundant != 1 {
		t.Errorf("total redundant = %d", rep.Redundant)
	}
}

// TestRedundancyDBLP: year is stored once per paper but determined per
// issue: 3 papers in 2 issues → 1 redundant copy.
func TestRedundancyDBLP(t *testing.T) {
	s := dblpSpec(t)
	doc := xmltree.MustParseString(load(t, "dblp.xml"))
	rep, err := MeasureRedundancy(s, doc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Redundant != 1 {
		t.Errorf("total redundant = %d, want 1 (%+v)", rep.Redundant, rep.PerFD)
	}
}

// TestRedundancyGoneAfterNormalization: the normalized document has no
// redundancy under the carried-over FDs.
func TestRedundancyGoneAfterNormalization(t *testing.T) {
	s := coursesSpec(t)
	out, steps, err := Normalize(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	doc := xmltree.MustParseString(load(t, "courses.xml"))
	if err := ApplySteps(doc, steps); err != nil {
		t.Fatal(err)
	}
	rep, err := MeasureRedundancy(out, doc)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Redundant != 0 {
		t.Errorf("normalized document still redundant: %+v", rep)
	}
}
