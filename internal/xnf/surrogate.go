package xnf

import (
	"fmt"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/xfd"
	"xmlnorm/internal/xmltree"
)

// Section 6 of the paper assumes FDs carry at most one element path on
// the left-hand side and remarks that others "can be easily eliminated
// by creating a new attribute @l and splitting {q, q'} ∪ S → p into
// q'.@l → q' and {q, q'.@l} ∪ S → p". This file implements that
// elimination: a surrogate key attribute is added to the extra element
// path's element type, declared a key by a new FD, and substituted for
// the element path in every offending FD. The corresponding document
// step (SurrogateStep) assigns fresh values; its inverse simply drops
// the synthetic attribute, so the pipeline stays lossless.

// SurrogateStep is the document counterpart of introducing a surrogate
// key attribute on the nodes of one element path.
type SurrogateStep struct {
	Q    dtd.Path // the element path receiving the key
	Attr string   // the synthetic attribute name
}

func (s *SurrogateStep) String() string {
	return fmt.Sprintf("add surrogate key %s.@%s", s.Q, s.Attr)
}

// Apply assigns a distinct value to each node at the path.
func (s *SurrogateStep) Apply(t *xmltree.Tree) error {
	for i, ln := range nodesAt(t, s.Q) {
		ln.node.SetAttr(s.Attr, fmt.Sprintf("%s%d", s.Attr, i+1))
	}
	return nil
}

// Invert removes the synthetic attribute.
func (s *SurrogateStep) Invert(t *xmltree.Tree) error {
	for _, ln := range nodesAt(t, s.Q) {
		delete(ln.node.Attrs, s.Attr)
	}
	return nil
}

// EliminateMultiElementLHS rewrites Σ so that every FD has at most one
// element path on its left-hand side, returning the new specification
// and one Step per surrogate key introduced. The FD that keeps its
// element path is the one with the shortest path (the outermost scope);
// deeper element paths are replaced by surrogate keys.
func EliminateMultiElementLHS(s Spec, names Names) (Spec, []Step, error) {
	if err := s.Validate(); err != nil {
		return Spec{}, nil, err
	}
	cur := s.Clone()
	var steps []Step
	// Surrogates already created in this run, by path.
	created := map[string]dtd.Path{} // q' path -> surrogate attribute path
	for {
		var offending *xfd.FD
		for i := range cur.FDs {
			if len(lhsElemPaths(cur.FDs[i])) > 1 {
				offending = &cur.FDs[i]
				break
			}
		}
		if offending == nil {
			return cur, steps, nil
		}
		elems := lhsElemPaths(*offending)
		// Keep the shortest element path; replace the others.
		keep := elems[0]
		for _, e := range elems[1:] {
			if len(e) < len(keep) {
				keep = e
			}
		}
		for _, q := range elems {
			if q.Equal(keep) {
				continue
			}
			attrPath, ok := created[q.String()]
			if !ok {
				elem := cur.DTD.Element(q.Last())
				if elem == nil {
					return Spec{}, nil, fmt.Errorf("xnf: element %q not declared", q.Last())
				}
				attr := names.fresh(func(n string) bool { return elem.HasAttr(n) },
					"surrogate:"+q.String(), "id")
				if err := cur.DTD.AddAttr(q.Last(), attr); err != nil {
					return Spec{}, nil, err
				}
				attrPath = q.Child("@" + attr)
				created[q.String()] = attrPath
				// The surrogate is a key: q'.@id → q'.
				cur.FDs = append(cur.FDs, xfd.FD{LHS: []dtd.Path{attrPath}, RHS: []dtd.Path{q.Clone()}})
				steps = append(steps, Step{
					Kind:   StepCreateElement, // schema-extending step
					FD:     *offending,
					Detail: fmt.Sprintf("introduced surrogate key %s", attrPath),
					Doc:    &SurrogateStep{Q: q.Clone(), Attr: attr},
				})
			}
			// Substitute q' by its surrogate in the offending FD.
			replaceLHSPath(offending, q, attrPath)
		}
	}
}

func replaceLHSPath(f *xfd.FD, from, to dtd.Path) {
	for i, p := range f.LHS {
		if p.Equal(from) {
			f.LHS[i] = to.Clone()
		}
	}
}

// HasMultiElementLHS reports whether some FD of Σ has more than one
// element path on its left-hand side (the form Section 6 excludes).
func HasMultiElementLHS(s Spec) bool {
	for _, f := range s.FDs {
		if len(lhsElemPaths(f)) > 1 {
			return true
		}
	}
	return false
}
