package xnf

import (
	"testing"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/xfd"
	"xmlnorm/internal/xmltree"
)

// multiSpec has an FD with two element paths on the LHS: within one
// order, the (product, warehouse) pair determines the shipment's lane.
func multiSpec() Spec {
	return Spec{
		DTD: dtd.MustParse(`
<!ELEMENT orders (order*)>
<!ELEMENT order (shipment*)>
<!ATTLIST order oid CDATA #REQUIRED>
<!ELEMENT shipment (leg*)>
<!ATTLIST shipment sid CDATA #REQUIRED>
<!ELEMENT leg EMPTY>
<!ATTLIST leg lane CDATA #REQUIRED>`),
		FDs: []xfd.FD{
			xfd.MustParse("orders.order, orders.order.shipment -> orders.order.shipment.leg.@lane"),
		},
	}
}

func TestHasMultiElementLHS(t *testing.T) {
	if !HasMultiElementLHS(multiSpec()) {
		t.Error("multiSpec should be detected")
	}
	single := Spec{DTD: multiSpec().DTD, FDs: []xfd.FD{
		xfd.MustParse("orders.order.@oid -> orders.order"),
	}}
	if HasMultiElementLHS(single) {
		t.Error("single element path misdetected")
	}
}

func TestEliminateMultiElementLHS(t *testing.T) {
	s := multiSpec()
	out, steps, err := EliminateMultiElementLHS(s, Names{})
	if err != nil {
		t.Fatal(err)
	}
	if HasMultiElementLHS(out) {
		t.Fatalf("elimination left a multi-element LHS: %v", out.FDs)
	}
	if len(steps) != 1 {
		t.Fatalf("steps = %v", steps)
	}
	// The deeper path (shipment) got the surrogate; the order element
	// path survives.
	if !out.DTD.Element("shipment").HasAttr("id") {
		t.Errorf("shipment should carry the surrogate key:\n%s", out.DTD)
	}
	// A key FD for the surrogate was added.
	foundKey := false
	for _, f := range out.FDs {
		if f.String() == "orders.order.shipment.@id -> orders.order.shipment" {
			foundKey = true
		}
	}
	if !foundKey {
		t.Errorf("surrogate key FD missing: %v", out.FDs)
	}
	// The rewritten spec is usable by the rest of the pipeline.
	if _, _, err := Check(out); err != nil {
		t.Fatalf("Check on rewritten spec: %v", err)
	}
	if _, _, err := Normalize(out, Options{}); err != nil {
		t.Fatalf("Normalize on rewritten spec: %v", err)
	}
}

func TestSurrogateStepDocuments(t *testing.T) {
	s := multiSpec()
	_, steps, err := EliminateMultiElementLHS(s, Names{})
	if err != nil {
		t.Fatal(err)
	}
	doc := xmltree.MustParseString(`
<orders>
  <order oid="o1">
    <shipment sid="s1"><leg lane="L1"/><leg lane="L1"/></shipment>
    <shipment sid="s2"><leg lane="L2"/></shipment>
  </order>
</orders>`)
	original := doc.Clone()
	if err := ApplySteps(doc, steps); err != nil {
		t.Fatal(err)
	}
	// Every shipment now carries a distinct surrogate.
	seen := map[string]bool{}
	for _, sh := range doc.Root.Children[0].ChildrenLabelled("shipment") {
		v, ok := sh.Attr("id")
		if !ok {
			t.Fatal("shipment missing surrogate")
		}
		if seen[v] {
			t.Errorf("surrogate value %q repeated", v)
		}
		seen[v] = true
	}
	if err := InvertSteps(doc, steps); err != nil {
		t.Fatal(err)
	}
	if !xmltree.Isomorphic(doc, original) {
		t.Errorf("surrogate round trip changed the document:\n%s", doc)
	}
}

// TestEliminationIdempotent: running the elimination twice changes
// nothing the second time.
func TestEliminationIdempotent(t *testing.T) {
	s := multiSpec()
	out, _, err := EliminateMultiElementLHS(s, Names{})
	if err != nil {
		t.Fatal(err)
	}
	again, steps, err := EliminateMultiElementLHS(out, Names{})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 0 {
		t.Errorf("second elimination applied steps: %v", steps)
	}
	if len(again.FDs) != len(out.FDs) {
		t.Error("second elimination changed Σ")
	}
}

// TestEliminationSharedPath: two FDs sharing the same extra element
// path reuse one surrogate.
func TestEliminationSharedPath(t *testing.T) {
	s := multiSpec()
	s.FDs = append(s.FDs,
		xfd.MustParse("orders.order, orders.order.shipment -> orders.order.shipment.@sid"))
	out, steps, err := EliminateMultiElementLHS(s, Names{})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 {
		t.Errorf("expected one shared surrogate, got %d steps", len(steps))
	}
	count := 0
	for _, a := range out.DTD.Element("shipment").Attrs {
		if a == "id" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("surrogate declared %d times", count)
	}
}
