package xnf

import (
	"fmt"
	"strings"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/implication"
	"xmlnorm/internal/regex"
	"xmlnorm/internal/xfd"
)

// Names configures the fresh element-type and attribute names introduced
// by the transformations. Preferred maps role keys to desired names:
//
//	"tau:<rhs path>"     — the new grouping element τ for that anomaly
//	"member:<lhs path>"  — the new child element τᵢ for that LHS attribute
//	"attr:<rhs path>"    — the attribute name @m used when moving
//
// Missing entries fall back to generated names, uniquified against the
// DTD.
type Names struct {
	Preferred map[string]string
}

// fresh picks a name for a role, preferring the configured one, then the
// base, then base2, base3, ...
func (n Names) fresh(taken func(string) bool, role, base string) string {
	if want, ok := n.Preferred[role]; ok && !taken(want) {
		return want
	}
	if !taken(base) {
		return base
	}
	for i := 2; ; i++ {
		c := fmt.Sprintf("%s%d", base, i)
		if !taken(c) {
			return c
		}
	}
}

// TransformResult is the outcome of one schema transformation.
type TransformResult struct {
	Spec Spec
	// Dropped lists FDs of the input Σ that mention paths no longer
	// present in the new DTD and could not be rewritten. (This cannot
	// happen when the moved attribute's element type occurs at a single
	// path, which is the situation in the paper's examples.)
	Dropped []xfd.FD
	// NewPaths maps old dotted paths to their replacements, for
	// documentation and for the document transformations.
	Renames map[string]string
	// Doc is the document-level counterpart of the schema
	// transformation (Apply/Invert), witnessing losslessness.
	Doc DocStep
}

// MoveAttribute implements D[p.@l := q.@m] (Section 6): the attribute
// @l is removed from R(last(p)) and added to R(last(q)) under the name
// @m. FDs of Σ are carried over with p.@l rewritten to q.@m; FDs that
// still mention removed paths are dropped (reported), and FDs that
// became trivial in the new DTD are omitted, as in the paper's DBLP
// example where issue → issue.@year is not kept.
func MoveAttribute(s Spec, pAttr, q dtd.Path, m string) (TransformResult, error) {
	if !pAttr.IsAttr() {
		return TransformResult{}, fmt.Errorf("xnf: %s is not an attribute path", pAttr)
	}
	if !q.IsElem() {
		return TransformResult{}, fmt.Errorf("xnf: %s is not an element path", q)
	}
	if !s.DTD.IsPath(pAttr) || !s.DTD.IsPath(q) {
		return TransformResult{}, fmt.Errorf("xnf: %s or %s is not a path of the DTD", pAttr, q)
	}
	l := strings.TrimPrefix(pAttr.Last(), "@")
	d := s.DTD.Clone()
	srcDecl := d.Element(pAttr.Parent().Last()).Decl(l)
	d.RemoveAttr(pAttr.Parent().Last(), l)
	if m == "" {
		m = l
	}
	if err := d.AddAttr(q.Last(), m); err != nil {
		return TransformResult{}, err
	}
	d.Element(q.Last()).SetDecl(m, srcDecl)
	target := q.Child("@" + m)
	res := TransformResult{
		Spec:    Spec{DTD: d},
		Renames: map[string]string{pAttr.String(): target.String()},
		Doc:     &MoveStep{PAttr: pAttr, Q: q, M: m},
	}
	for _, f := range s.FDs {
		nf := rewriteFD(f, map[string]string{pAttr.String(): target.String()})
		if err := nf.Validate(d); err != nil {
			res.Dropped = append(res.Dropped, f)
			continue
		}
		res.Spec.FDs = append(res.Spec.FDs, nf)
	}
	var err error
	res.Spec.FDs, err = pruneFDs(d, res.Spec.FDs)
	if err != nil {
		return TransformResult{}, err
	}
	return res, nil
}

// CreateElement implements D[p.@l := q.τ[τ1.@l1, ..., τn.@ln, @l]]
// (Section 6) for an anomalous FD {q, p1.@l1, ..., pn.@ln} → rhs, where
// rhs is p.@l (attribute form) or p.S (text form; the paper treats p.S
// as replaceable by an attribute — we support it natively so that the
// university example reproduces the published DTD exactly, with the
// name element moving under info). If the FD has no element path on the
// left-hand side, q defaults to the root path, which is always
// (trivially) determined.
func CreateElement(s Spec, anomaly xfd.FD, names Names) (TransformResult, error) {
	if len(anomaly.RHS) != 1 {
		return TransformResult{}, fmt.Errorf("xnf: anomalous FD must have a single RHS path")
	}
	if err := normalFormOK(anomaly); err != nil {
		return TransformResult{}, err
	}
	rhs := anomaly.RHS[0]
	if rhs.IsElem() {
		return TransformResult{}, fmt.Errorf("xnf: RHS %s is not an attribute or text path", rhs)
	}
	// Split the LHS.
	q := dtd.Path{s.DTD.Root()}
	var attrLHS []dtd.Path
	for _, p := range anomaly.LHS {
		if p.IsElem() {
			q = p
			continue
		}
		if !p.IsAttr() {
			return TransformResult{}, fmt.Errorf("xnf: LHS path %s must be an element or attribute path", p)
		}
		attrLHS = append(attrLHS, p)
	}
	d := s.DTD.Clone()
	taken := func(name string) bool { return d.Element(name) != nil }

	// Fresh element types.
	tauBase := "info"
	tau := names.fresh(taken, "tau:"+rhs.String(), tauBase)
	memberOf := map[string]string{} // lhs attr path -> member element name
	var members []string
	for _, p := range attrLHS {
		li := strings.TrimPrefix(p.Last(), "@")
		name := names.fresh(func(n string) bool { return taken(n) || n == tau || contains(members, n) },
			"member:"+p.String(), li+"_ref")
		memberOf[p.String()] = name
		members = append(members, name)
	}

	// P'(τ) = τ1*, ..., τn* (plus the text element in text form).
	var tauModel *regex.Expr
	for _, mname := range members {
		tauModel = regex.AppendLetter(tauModel, mname, regex.StarM)
	}

	renames := map[string]string{}
	tauPath := q.Child(tau)
	var tauAttrs []string
	var tauDecl dtd.AttrDecl

	optionalValue := rhsNullableGivenLHS(s.DTD, anomaly)
	if rhs.IsText() {
		// Text form: move the element e = last(parent(rhs)) under τ.
		ePath := rhs.Parent()
		e := ePath.Last()
		host := ePath.Parent()
		if host == nil {
			return TransformResult{}, fmt.Errorf("xnf: text path %s too short", rhs)
		}
		hostElem := d.Element(host.Last())
		if hostElem.Kind != dtd.ModelContent {
			return TransformResult{}, fmt.Errorf("xnf: %s has no element content", host)
		}
		hostElem.Model = regex.RemoveLetter(hostElem.Model, e)
		if hostElem.Model.Kind == regex.KindEmpty {
			hostElem.Kind = dtd.EmptyContent
			hostElem.Model = nil
		}
		// The paper's footnote: when ⊥ can be a value of the RHS in
		// tuples (the carrier is optional below the determinants), the
		// moved element becomes optional under τ so that "no value" is
		// representable.
		mult := regex.One
		if optionalValue {
			mult = regex.OptM
		}
		tauModel = regex.AppendLetter(tauModel, e, mult)
		renames[ePath.String()] = tauPath.Child(e).String()
		renames[rhs.String()] = tauPath.Child(e).Child(dtd.TextStep).String()
	} else {
		if optionalValue {
			return TransformResult{}, fmt.Errorf("xnf: %s can be ⊥ while the determinants are not; "+
				"the attribute-form construction needs the paper's footnote variant (wrap the value in an "+
				"optional element or make the carrier required)", rhs)
		}
		// Attribute form: @l moves to τ, keeping its declaration details.
		l := strings.TrimPrefix(rhs.Last(), "@")
		tauDecl = d.Element(rhs.Parent().Last()).Decl(l)
		d.RemoveAttr(rhs.Parent().Last(), l)
		tauAttrs = append(tauAttrs, l)
		renames[rhs.String()] = tauPath.Child("@" + l).String()
	}

	// Declare τ and its members.
	tauKind := dtd.ModelContent
	if tauModel == nil || tauModel.Kind == regex.KindEmpty {
		tauKind, tauModel = dtd.EmptyContent, nil
	}
	if err := d.AddElement(&dtd.Element{Name: tau, Kind: tauKind, Model: tauModel, Attrs: tauAttrs}); err != nil {
		return TransformResult{}, err
	}
	if len(tauAttrs) > 0 {
		d.Element(tau).SetDecl(tauAttrs[0], tauDecl)
	}
	for _, p := range attrLHS {
		mname := memberOf[p.String()]
		li := strings.TrimPrefix(p.Last(), "@")
		if err := d.AddElement(&dtd.Element{Name: mname, Kind: dtd.EmptyContent, Attrs: []string{li}}); err != nil {
			return TransformResult{}, err
		}
		renames[p.String()] = tauPath.Child(mname).Child("@" + li).String()
		renames[p.Parent().String()] = tauPath.Child(mname).String()
	}

	// P'(last(q)) = P(last(q)), τ*.
	host := d.Element(q.Last())
	switch host.Kind {
	case dtd.TextContent:
		return TransformResult{}, fmt.Errorf("xnf: cannot add %s under #PCDATA element %s", tau, q.Last())
	case dtd.EmptyContent:
		host.Kind = dtd.ModelContent
		host.Model = regex.Star(regex.Letter(tau))
	default:
		host.Model = regex.AppendLetter(host.Model, tau, regex.StarM)
	}

	res := TransformResult{Spec: Spec{DTD: d}, Renames: renames, Doc: &CreateStep{
		Q: q, LHSAttrs: attrLHS, RHS: rhs, Tau: tau, Members: members,
		TextForm: rhs.IsText(), OptionalValue: optionalValue,
	}}

	// Σ': (1) surviving FDs; (2) FDs over {q, pᵢ, pᵢ.@lᵢ, p, rhs}
	// transferred to τ and its children; (3) the key FDs of the new
	// element types.
	transferable := map[string]bool{q.String(): true}
	for _, p := range attrLHS {
		transferable[p.String()] = true
		transferable[p.Parent().String()] = true
	}
	transferable[rhs.String()] = true
	if rhs.IsText() {
		transferable[rhs.Parent().String()] = true
	}

	for _, f := range s.FDs {
		if err := f.Validate(d); err == nil {
			res.Spec.FDs = append(res.Spec.FDs, f)
		} else {
			res.Dropped = append(res.Dropped, f)
		}
		if allPathsIn(f, transferable) {
			nf := rewriteFD(f, renames)
			if err := nf.Validate(d); err == nil {
				res.Spec.FDs = append(res.Spec.FDs, nf)
			}
		}
	}
	// (3) Key FDs.
	key := xfd.FD{RHS: []dtd.Path{tauPath}}
	key.LHS = append(key.LHS, q)
	for _, p := range attrLHS {
		key.LHS = append(key.LHS, dtd.MustParsePath(renames[p.String()]))
	}
	res.Spec.FDs = append(res.Spec.FDs, key)
	for _, p := range attrLHS {
		memberPath := dtd.MustParsePath(renames[p.Parent().String()])
		attrPath := dtd.MustParsePath(renames[p.String()])
		res.Spec.FDs = append(res.Spec.FDs, xfd.FD{
			LHS: []dtd.Path{tauPath, attrPath},
			RHS: []dtd.Path{memberPath},
		})
	}
	var err error
	res.Spec.FDs, err = pruneFDs(d, res.Spec.FDs)
	if err != nil {
		return TransformResult{}, err
	}
	return res, nil
}

// rewriteFD substitutes whole paths according to the rename map.
func rewriteFD(f xfd.FD, renames map[string]string) xfd.FD {
	sub := func(ps []dtd.Path) []dtd.Path {
		out := make([]dtd.Path, len(ps))
		for i, p := range ps {
			if to, ok := renames[p.String()]; ok {
				out[i] = dtd.MustParsePath(to)
			} else {
				out[i] = p.Clone()
			}
		}
		return out
	}
	return xfd.FD{LHS: sub(f.LHS), RHS: sub(f.RHS)}
}

// allPathsIn reports whether every path of the FD is in the set.
func allPathsIn(f xfd.FD, set map[string]bool) bool {
	for _, p := range f.Paths() {
		if !set[p.String()] {
			return false
		}
	}
	return true
}

// pruneFDs removes duplicates and FDs trivially implied by the DTD
// alone, mirroring the paper's remark that e.g. issue → issue.@year is
// not kept after moving the attribute.
func pruneFDs(d *dtd.DTD, fds []xfd.FD) ([]xfd.FD, error) {
	var out []xfd.FD
	for _, f := range fds {
		dup := false
		for _, g := range out {
			if f.Equal(g) {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		trivial, err := implication.Trivial(d, f)
		if err != nil {
			return nil, err
		}
		if trivial {
			continue
		}
		out = append(out, f)
	}
	return out, nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// rhsNullableGivenLHS decides whether the anomalous FD's RHS can be ⊥
// in a tuple whose determinants are non-null: it walks from the deepest
// common ancestor of the LHS parents (and q) down to the RHS carrier
// and reports true if any step is optional (?, *, or a nullable
// disjunction branch) — the condition of the paper's footnote.
func rhsNullableGivenLHS(d *dtd.DTD, anomaly xfd.FD) bool {
	rhs := anomaly.RHS[0]
	carrier := rhs.Parent() // the node holding the value (text element or attribute host)
	// A determinant below the carrier forces the whole chain through the
	// carrier non-null (⊥ propagates downward, so a non-null descendant
	// means every prefix is non-null too).
	anchor := dtd.Path{d.Root()}
	for _, p := range anomaly.LHS {
		ep := p
		if !p.IsElem() {
			ep = p.Parent()
		}
		if ep.HasPrefix(carrier) {
			return false
		}
		if carrier.HasPrefix(ep) && len(ep) > len(anchor) {
			anchor = ep
		}
	}
	// Walk anchor → carrier; any step that admits zero occurrences makes
	// ⊥ reachable.
	for i := len(anchor); i < len(carrier); i++ {
		parentElem := d.Element(carrier[i-1])
		if parentElem == nil || parentElem.Kind != dtd.ModelContent {
			return true // defensive: unknown structure counts as nullable
		}
		step := carrier[i]
		if factors, ok := regex.Disjunctive(parentElem.Model); ok {
			found := false
			for _, f := range factors {
				if f.Units != nil {
					if m, has := f.Units[step]; has {
						found = true
						if m.AllowsZero() {
							return true
						}
					}
					continue
				}
				for _, letter := range f.Disj.Letters {
					if letter == step {
						found = true
						if len(f.Disj.Letters) > 1 || f.Disj.Nullable {
							return true // a branch can be skipped
						}
					}
				}
			}
			if !found {
				return true
			}
			continue
		}
		// Non-disjunctive content model: fall back to occurrence counts.
		c, has := regex.CountsOf(parentElem.Model)[step]
		if !has || c.Lo == 0 {
			return true
		}
	}
	return false
}
