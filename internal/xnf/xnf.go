// Package xnf implements the XML normal form of Arenas & Libkin (PODS
// 2002): the XNF test (Definition 8, via Proposition 10), anomalous
// functional dependencies and paths, the two schema transformations of
// Section 6 ("moving attributes" and "creating new element types"), the
// XNF decomposition algorithm of Figure 4, the implication-free variant
// of Proposition 7, the corresponding document transformations, and
// losslessness verification (Proposition 8).
package xnf

import (
	"fmt"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/engine"
	"xmlnorm/internal/xfd"
	"xmlnorm/internal/xmltree"
)

// Spec is a specification (D, Σ): a DTD together with a set of
// functional dependencies over its paths.
type Spec struct {
	DTD *dtd.DTD
	FDs []xfd.FD
}

// Clone deep-copies the specification.
func (s Spec) Clone() Spec {
	c := Spec{DTD: s.DTD.Clone()}
	for _, f := range s.FDs {
		c.FDs = append(c.FDs, f.Clone())
	}
	return c
}

// Validate checks that every FD ranges over paths of the DTD.
func (s Spec) Validate() error {
	for _, f := range s.FDs {
		if err := f.Validate(s.DTD); err != nil {
			return err
		}
	}
	return nil
}

// Anomaly is an anomalous functional dependency: a non-trivial
// S → p.@l (or S → p.S) in (D, Σ)⁺ with S → p not in (D, Σ)⁺. Its RHS
// is an anomalous path (Section 6).
type Anomaly struct {
	FD     xfd.FD   // single-RHS form, RHS an attribute or text path
	Target dtd.Path // the element path p that S fails to determine
	// Witness is a concrete document exhibiting the redundancy: it
	// conforms to the DTD, satisfies Σ, and stores the determined value
	// on two distinct Target nodes for one left-hand side. It is the
	// verified counterexample of the failed S → Target implication.
	Witness *xmltree.Tree
}

// Check decides whether (D, Σ) is in XNF and returns the anomalies
// found. Per Proposition 10, for a relational DTD (every disjunctive
// DTD is one, Proposition 9) it suffices to examine the FDs of Σ rather
// than the full closure, which is what makes the test effective; the
// DTD must be non-recursive and disjunctive, as required by the
// implication engine.
func Check(s Spec) (bool, []Anomaly, error) {
	return CheckOpts(s, engine.Options{})
}

// CheckOpts is Check with explicit engine options (worker count,
// caching) for the underlying implication engine.
func CheckOpts(s Spec, eo engine.Options) (bool, []Anomaly, error) {
	anomalies, err := AnomaliesOpts(s, eo)
	if err != nil {
		return false, nil, err
	}
	return len(anomalies) == 0, anomalies, nil
}

// Anomalies lists the anomalous FDs among (the single-RHS splits of) Σ.
func Anomalies(s Spec) ([]Anomaly, error) {
	return AnomaliesOpts(s, engine.Options{})
}

// AnomaliesOpts is Anomalies with explicit engine options.
func AnomaliesOpts(s Spec, eo engine.Options) ([]Anomaly, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	eng, err := engine.New(s.DTD, s.FDs, eo)
	if err != nil {
		return nil, err
	}
	return anomaliesWith(eng, s.FDs)
}

// AnomaliesWith lists the anomalous FDs among (the single-RHS splits
// of) fds, answering through a caller-supplied engine. The analysis
// subsystem uses it to share one cached engine between the anomaly
// scan, anomaly minimization and the repair-step search; the engine
// must be built over the spec the FDs belong to.
func AnomaliesWith(eng *engine.Engine, fds []xfd.FD) ([]Anomaly, error) {
	return anomaliesWith(eng, fds)
}

// anomaliesWith scans the single-RHS splits of fds for anomalies across
// the engine's worker pool. Results keep the sequential order: each
// goroutine writes only its own index, and the fan-out engine answers
// identically to the sequential path.
func anomaliesWith(eng *engine.Engine, fds []xfd.FD) ([]Anomaly, error) {
	var singles []xfd.FD
	for _, f := range fds {
		singles = append(singles, f.SingleRHS()...)
	}
	// Pre-resolve the splits against the engine's path universe so every
	// downstream cache-key rendering takes the interned-bitset fast path.
	// Validated FDs always resolve; one that does not is simply keyed by
	// its string rendering instead.
	for i := range singles {
		_ = singles[i].Resolve(eng.Universe())
	}
	found := make([]*Anomaly, len(singles))
	err := eng.ForEach(len(singles), func(i int) error {
		a, ok, err := anomalous(eng, singles[i])
		if err != nil {
			return err
		}
		if ok {
			found[i] = &a
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var anomalies []Anomaly
	for _, a := range found {
		if a != nil {
			anomalies = append(anomalies, *a)
		}
	}
	return anomalies, nil
}

// anomalous decides whether a single-RHS FD is anomalous over (D, Σ);
// the engine answers both the (D, Σ) query and the triviality query
// (D, ∅) from its cache.
func anomalous(eng *engine.Engine, single xfd.FD) (Anomaly, bool, error) {
	rhs := single.RHS[0]
	if rhs.IsElem() {
		return Anomaly{}, false, nil // XNF constrains only attribute/text RHS
	}
	trivial, err := eng.Trivial(single)
	if err != nil {
		return Anomaly{}, false, err
	}
	if trivial {
		return Anomaly{}, false, nil
	}
	target := rhs.Parent()
	ans, err := eng.Implies(xfd.FD{LHS: single.LHS, RHS: []dtd.Path{target}})
	if err != nil {
		return Anomaly{}, false, err
	}
	if ans.Implied {
		return Anomaly{}, false, nil
	}
	return Anomaly{FD: single, Target: target, Witness: ans.Counterexample}, true, nil
}

// AnomalousPaths returns the set of anomalous paths AP(D, Σ) restricted
// to right-hand sides of Σ (sufficient for relational DTDs by
// Proposition 10), as dotted strings.
func AnomalousPaths(s Spec) (map[string]bool, error) {
	return AnomalousPathsOpts(s, engine.Options{})
}

// AnomalousPathsOpts is AnomalousPaths with explicit engine options.
func AnomalousPathsOpts(s Spec, eo engine.Options) (map[string]bool, error) {
	anomalies, err := AnomaliesOpts(s, eo)
	if err != nil {
		return nil, err
	}
	out := map[string]bool{}
	for _, a := range anomalies {
		out[a.FD.RHS[0].String()] = true
	}
	return out, nil
}

// lhsElemPaths returns the element paths of an FD's LHS.
func lhsElemPaths(f xfd.FD) []dtd.Path {
	var out []dtd.Path
	for _, p := range f.LHS {
		if p.IsElem() {
			out = append(out, p)
		}
	}
	return out
}

// normalForm checks the assumptions of Section 6 on an anomalous FD:
// at most one element path on the left-hand side.
func normalFormOK(f xfd.FD) error {
	if len(lhsElemPaths(f)) > 1 {
		return fmt.Errorf("xnf: FD %s has more than one element path on the left-hand side; "+
			"split it by introducing a key attribute first (Section 6)", f)
	}
	return nil
}
