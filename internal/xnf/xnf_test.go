package xnf

import (
	"os"
	"path/filepath"
	"testing"

	"xmlnorm/internal/dtd"
	"xmlnorm/internal/xfd"
	"xmlnorm/internal/xmltree"
)

func load(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("../../testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// coursesSpec is Example 1.1 / 4.1 / 5.1: the university DTD with FD1,
// FD2, FD3.
func coursesSpec(t *testing.T) Spec {
	t.Helper()
	return Spec{
		DTD: dtd.MustParse(load(t, "courses.dtd")),
		FDs: []xfd.FD{
			xfd.MustParse("courses.course.@cno -> courses.course"),
			xfd.MustParse("courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student"),
			xfd.MustParse("courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name.S"),
		},
	}
}

// dblpSpec is Example 1.2 / 5.2.
func dblpSpec(t *testing.T) Spec {
	t.Helper()
	return Spec{
		DTD: dtd.MustParse(load(t, "dblp.dtd")),
		FDs: []xfd.FD{
			xfd.MustParse("db.conf.title.S -> db.conf"),
			xfd.MustParse("db.conf.issue -> db.conf.issue.inproceedings.@year"),
			xfd.MustParse("db.conf.issue.inproceedings.@key -> db.conf.issue.inproceedings"),
		},
	}
}

// TestExample51_CheckCourses: the university design is not in XNF, and
// the violation is FD3 (Example 5.1).
func TestExample51_CheckCourses(t *testing.T) {
	s := coursesSpec(t)
	ok, anomalies, err := Check(s)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("courses spec should not be in XNF")
	}
	if len(anomalies) != 1 {
		t.Fatalf("anomalies = %v, want exactly FD3", anomalies)
	}
	if got := anomalies[0].FD.RHS[0].String(); got != "courses.course.taken_by.student.name.S" {
		t.Errorf("anomalous path = %q", got)
	}
	if got := anomalies[0].Target.String(); got != "courses.course.taken_by.student.name" {
		t.Errorf("target = %q", got)
	}
}

// TestExample52_CheckDBLP: the DBLP design is not in XNF because of FD5.
func TestExample52_CheckDBLP(t *testing.T) {
	s := dblpSpec(t)
	ok, anomalies, err := Check(s)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("DBLP spec should not be in XNF")
	}
	if len(anomalies) != 1 {
		t.Fatalf("anomalies = %v, want exactly FD5", anomalies)
	}
	if got := anomalies[0].FD.RHS[0].String(); got != "db.conf.issue.inproceedings.@year" {
		t.Errorf("anomalous path = %q", got)
	}
}

// TestNormalizeUniversity reproduces the paper's headline example: the
// algorithm converts the courses DTD into exactly the revised DTD of
// Example 1.1(b), using one create-element step.
func TestNormalizeUniversity(t *testing.T) {
	s := coursesSpec(t)
	names := Names{Preferred: map[string]string{
		"tau:courses.course.taken_by.student.name.S":  "info",
		"member:courses.course.taken_by.student.@sno": "number",
	}}
	out, steps, err := Normalize(s, Options{Names: names})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0].Kind != StepCreateElement {
		t.Fatalf("steps = %+v, want one create-element", steps)
	}
	want := dtd.MustParse(load(t, "courses_xnf.dtd"))
	if !dtd.EquivalentModels(out.DTD, want) {
		t.Errorf("normalized DTD differs from Example 1.1(b):\ngot:\n%s\nwant:\n%s", out.DTD, want)
	}
	// The result is in XNF.
	ok, anomalies, err := Check(out)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("normalized spec not in XNF: %v", anomalies)
	}
	// FD1 and FD2 survive; the info key is present.
	found := map[string]bool{}
	for _, f := range out.FDs {
		found[f.String()] = true
	}
	for _, want := range []string{
		"courses.course.@cno -> courses.course",
		"courses.course, courses.course.taken_by.student.@sno -> courses.course.taken_by.student",
		"courses, courses.info.number.@sno -> courses.info",
	} {
		if !found[want] {
			t.Errorf("missing FD %q in normalized spec:\n%v", want, out.FDs)
		}
	}
}

// TestNormalizeDBLP reproduces the second headline example: year moves
// from inproceedings to issue, giving exactly the revised attribute
// lists of Example 1.2, with one move-attribute step.
func TestNormalizeDBLP(t *testing.T) {
	s := dblpSpec(t)
	out, steps, err := Normalize(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 || steps[0].Kind != StepMoveAttribute {
		t.Fatalf("steps = %+v, want one move-attribute", steps)
	}
	want := dtd.MustParse(load(t, "dblp_xnf.dtd"))
	if !dtd.EquivalentModels(out.DTD, want) {
		t.Errorf("normalized DTD differs from the revised DBLP DTD:\ngot:\n%s\nwant:\n%s", out.DTD, want)
	}
	ok, anomalies, err := Check(out)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("normalized spec not in XNF: %v", anomalies)
	}
	// FD5 must not be replaced by the trivial issue → issue.@year
	// (paper, Example 5.2).
	for _, f := range out.FDs {
		if f.String() == "db.conf.issue -> db.conf.issue.@year" {
			t.Errorf("trivial FD kept: %s", f)
		}
	}
}

// TestNormalizedSpecsAreFixpoints: normalizing an XNF spec changes
// nothing.
func TestNormalizedSpecsAreFixpoints(t *testing.T) {
	s := coursesSpec(t)
	out, _, err := Normalize(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	again, steps, err := Normalize(out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 0 {
		t.Errorf("re-normalization applied steps: %+v", steps)
	}
	if !dtd.EquivalentModels(again.DTD, out.DTD) {
		t.Error("re-normalization changed the DTD")
	}
}

// TestSimplifiedNormalize: the implication-free variant (Proposition 7)
// also reaches XNF, possibly with a different (less economical) schema.
func TestSimplifiedNormalize(t *testing.T) {
	for _, mk := range []func(*testing.T) Spec{coursesSpec, dblpSpec} {
		s := mk(t)
		out, steps, err := Normalize(s, Options{Simplified: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(steps) == 0 {
			t.Error("simplified variant applied no steps")
		}
		ok, anomalies, err := Check(out)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("simplified result not in XNF: %v", anomalies)
		}
		for _, st := range steps {
			if st.Kind != StepCreateElement {
				t.Errorf("simplified variant used %v", st.Kind)
			}
		}
	}
}

// TestProposition6_AnomalousPathsDecrease: each step of the algorithm
// reduces the number of anomalous paths.
func TestProposition6_AnomalousPathsDecrease(t *testing.T) {
	specs := []Spec{coursesSpec(t), dblpSpec(t), {
		// Two anomalies at once.
		DTD: dtd.MustParse(`
<!ELEMENT r (a*)>
<!ELEMENT a (b*)>
<!ATTLIST a k CDATA #REQUIRED>
<!ELEMENT b EMPTY>
<!ATTLIST b x CDATA #REQUIRED y CDATA #REQUIRED z CDATA #REQUIRED>`),
		FDs: []xfd.FD{
			xfd.MustParse("r.a.b.@x -> r.a.b.@y"),
			xfd.MustParse("r.a -> r.a.b.@z"),
		},
	}}
	for si, s := range specs {
		cur := s
		prev := -1
		for step := 0; ; step++ {
			aps, err := AnomalousPaths(cur)
			if err != nil {
				t.Fatalf("spec %d: %v", si, err)
			}
			if prev >= 0 && len(aps) >= prev {
				t.Errorf("spec %d step %d: anomalous paths %d did not decrease from %d", si, step, len(aps), prev)
				break
			}
			prev = len(aps)
			if len(aps) == 0 {
				break
			}
			next, steps, err := Normalize(cur, Options{MaxSteps: 1})
			if err != nil {
				// MaxSteps: 1 reports non-convergence when more work
				// remains; extract the one-step result differently.
				next2, allSteps, err2 := Normalize(cur, Options{})
				if err2 != nil {
					t.Fatalf("spec %d: %v / %v", si, err, err2)
				}
				if len(allSteps) <= 1 {
					cur = next2
					continue
				}
				// Re-run with enough steps and walk one at a time via the
				// transformations directly: simplest is to accept the
				// full run and stop the per-step accounting here.
				cur = next2
				continue
			}
			_ = steps
			cur = next
		}
	}
}

func TestMoveAttributeErrors(t *testing.T) {
	s := dblpSpec(t)
	if _, err := MoveAttribute(s, dtd.MustParsePath("db.conf"), dtd.MustParsePath("db.conf"), "m"); err == nil {
		t.Error("non-attribute source should fail")
	}
	if _, err := MoveAttribute(s, dtd.MustParsePath("db.conf.issue.inproceedings.@year"),
		dtd.MustParsePath("db.conf.title.S"), "m"); err == nil {
		t.Error("non-element target should fail")
	}
	if _, err := MoveAttribute(s, dtd.MustParsePath("db.zzz.@x"), dtd.MustParsePath("db.conf"), "m"); err == nil {
		t.Error("invalid path should fail")
	}
}

func TestCreateElementErrors(t *testing.T) {
	s := coursesSpec(t)
	if _, err := CreateElement(s, xfd.MustParse("courses.course -> courses.course.title"), Names{}); err == nil {
		t.Error("element RHS should fail")
	}
	two := xfd.MustParse("courses.course, courses.course.taken_by -> courses.course.@cno")
	if _, err := CreateElement(s, two, Names{}); err == nil {
		t.Error("two element paths on LHS should fail")
	}
}

// TestFreshNameCollisions: generated names avoid existing element
// types.
func TestFreshNameCollisions(t *testing.T) {
	s := Spec{
		DTD: dtd.MustParse(`
<!ELEMENT r (info*)>
<!ELEMENT info EMPTY>
<!ATTLIST info k CDATA #REQUIRED v CDATA #REQUIRED>`),
		FDs: []xfd.FD{xfd.MustParse("r.info.@k -> r.info.@v")},
	}
	out, steps, err := Normalize(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 1 {
		t.Fatalf("steps = %v", steps)
	}
	ok, _, err := Check(out)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("result not in XNF")
	}
	if out.DTD.Element("info2") == nil && out.DTD.Element("k_ref") == nil {
		t.Errorf("expected uniquified fresh names in:\n%s", out.DTD)
	}
}

// TestAnomalyWitness: every anomaly carries a concrete document that
// conforms, satisfies Σ, and stores the determined value redundantly.
func TestAnomalyWitness(t *testing.T) {
	for _, mk := range []func(*testing.T) Spec{coursesSpec, dblpSpec} {
		s := mk(t)
		anomalies, err := Anomalies(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range anomalies {
			if a.Witness == nil {
				t.Fatalf("anomaly %s without witness", a.FD)
			}
			if err := xmltree.ConformsUnordered(a.Witness, s.DTD); err != nil {
				t.Errorf("witness does not conform: %v", err)
			}
			if !xfd.SatisfiesAll(a.Witness, s.FDs) {
				t.Error("witness violates Σ")
			}
			// The witness has redundancy under this FD... or stores the
			// value for two target nodes; MeasureRedundancy sees it.
			rep, err := MeasureRedundancy(s, a.Witness)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Redundant == 0 {
				t.Errorf("witness for %s shows no redundancy:\n%s", a.FD, a.Witness)
			}
		}
	}
}

// TestVerifySteps: the Proposition 6 runtime invariant holds on the
// paper examples and the chain family.
func TestVerifySteps(t *testing.T) {
	for _, s := range []Spec{coursesSpec(t), dblpSpec(t)} {
		if _, _, err := Normalize(s, Options{VerifySteps: true}); err != nil {
			t.Errorf("VerifySteps failed: %v", err)
		}
	}
}
