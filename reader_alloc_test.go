package xmlnorm

// Allocation regression tests for the streaming checker: the whole
// point of CheckDocumentReader is that memory stays bounded by the
// fold state, so a change that buffers the input (the old stdin path
// read the whole document into memory before parsing) or leaks
// per-entry garbage must fail here, not in a gigabyte benchmark.

import (
	"bytes"
	"io"
	"runtime"
	"testing"

	"xmlnorm/internal/gen"
)

// logDoc materializes a log-family document of roughly n entries with
// heavy <detail> padding, so allocation totals are dominated by how
// the checker handles bytes it should never retain.
func logDoc(t testing.TB, entries, padding int) []byte {
	t.Helper()
	// Entry size ~= 60 bytes of markup + padding; see gen.SizedLog.
	b, err := io.ReadAll(gen.SizedLog(int64(entries*(60+padding)), 11, 16, padding, false))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCheckDocumentReaderAllocs pins a per-entry allocation ceiling on
// the streaming path. The ceiling is deliberately loose (the
// encoding/xml tokenizer allocates a handful of objects per element);
// what it catches is a regression to whole-input buffering or
// per-entry tuple materialization, which blow it up by orders of
// magnitude.
func TestCheckDocumentReaderAllocs(t *testing.T) {
	const entries = 2000
	doc := logDoc(t, entries, 256)
	sigma := gen.LogFDs()
	allocs := testing.AllocsPerRun(5, func() {
		vs, err := CheckDocumentReader(bytes.NewReader(doc), sigma, ReaderOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 0 {
			t.Fatalf("%d violations on a satisfied document", len(vs))
		}
	})
	if perEntry := allocs / entries; perEntry > 40 {
		t.Errorf("streaming check allocates %.1f objects per entry, want <= 40", perEntry)
	}
}

// TestCheckDocumentReaderAllocBytes compares total allocated bytes:
// on a padding-heavy document the streaming path must allocate well
// under half of what parse-then-check does, since it never retains the
// padding text or builds nodes.
func TestCheckDocumentReaderAllocBytes(t *testing.T) {
	doc := logDoc(t, 4000, 256)
	sigma := gen.LogFDs()

	measure := func(f func() error) uint64 {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if err := f(); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}

	streamB := measure(func() error {
		_, err := CheckDocumentReader(bytes.NewReader(doc), sigma, ReaderOptions{})
		return err
	})
	treeB := measure(func() error {
		tree, err := ParseDocumentReader(bytes.NewReader(doc))
		if err != nil {
			return err
		}
		_ = Violations(tree, sigma)
		return nil
	})
	if streamB*2 > treeB {
		t.Errorf("streaming check allocated %d bytes, tree check %d; want stream < tree/2", streamB, treeB)
	}
}
