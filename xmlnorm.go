// Package xmlnorm is a library for XML design theory: functional
// dependencies over DTD paths, the XML normal form XNF, and lossless
// XNF normalization, implementing Arenas & Libkin, "A Normal Form for
// XML Documents" (PODS 2002).
//
// The top-level API works on specifications — a DTD plus a set of
// functional dependencies — written in a plain-text format: the DTD in
// standard <!ELEMENT>/<!ATTLIST> syntax, a line containing only "%%",
// then one FD per line in dotted-path notation:
//
//	<!ELEMENT courses (course*)>
//	<!ELEMENT course (title, taken_by)>
//	...
//	%%
//	courses.course.@cno -> courses.course
//	courses.course.taken_by.student.@sno -> courses.course.taken_by.student.name.S
//
// The heavy lifting lives in the internal packages:
//
//	internal/dtd         DTDs, paths, Section 7 classifications
//	internal/xmltree     the XML tree model, conformance, subsumption
//	internal/tuples      tree tuples (Section 3)
//	internal/xfd         XML functional dependencies (Section 4)
//	internal/implication FD implication (Theorems 3-5)
//	internal/xnf         XNF, normalization, losslessness (Sections 5-6)
//	internal/relational  BCNF substrate and Proposition 4 encoding
//	internal/nested      nested relations, NNF, Proposition 5 encoding
//	internal/table       Codd tables and null-aware relational algebra
//	internal/gen         workload generators for tests and benchmarks
package xmlnorm

import (
	"context"
	"fmt"
	"io"
	"strings"

	"xmlnorm/internal/analyze"
	"xmlnorm/internal/dtd"
	"xmlnorm/internal/engine"
	"xmlnorm/internal/implication"
	"xmlnorm/internal/incremental"
	"xmlnorm/internal/xfd"
	"xmlnorm/internal/xmltree"
	"xmlnorm/internal/xnf"
)

// Re-exported core types. The library's own packages are internal;
// these aliases are the supported public surface.
type (
	// Spec is a specification (D, Σ).
	Spec = xnf.Spec
	// DTD is a Document Type Definition.
	DTD = dtd.DTD
	// Path is a dotted DTD path.
	Path = dtd.Path
	// FD is an XML functional dependency.
	FD = xfd.FD
	// Tree is an XML document tree.
	Tree = xmltree.Tree
	// Anomaly is an XNF violation.
	Anomaly = xnf.Anomaly
	// Step is one normalization step.
	Step = xnf.Step
	// NormalizeOptions configures Normalize.
	NormalizeOptions = xnf.Options
	// ImplicationAnswer is the result of an implication test.
	ImplicationAnswer = implication.Answer
	// Engine is a concurrency-safe, memoizing implication engine over
	// one specification; see NewEngine.
	Engine = engine.Engine
	// EngineOptions configures workers and caching for an Engine and
	// for the Opts variants of the spec-level operations. The zero
	// value means GOMAXPROCS workers with caching on.
	EngineOptions = engine.Options
	// EngineStats reports an engine's cache hit/miss counters.
	EngineStats = engine.Stats
	// RedundancyReport quantifies update-anomaly-causing redundancy.
	RedundancyReport = xnf.RedundancyReport
	// AnalysisReport is the structured schema analysis of a
	// specification: candidate keys, the classified canonical cover,
	// the XNF diagnosis, and the 4XNF verdict. See Analyze.
	AnalysisReport = analyze.Report
	// AnalyzeOptions configures Analyze (key-size bound, declared tree
	// MVDs, engine options).
	AnalyzeOptions = analyze.Options
	// CandidateKey is one candidate key of a specification.
	CandidateKey = analyze.Key
	// Diagnosis explains one XNF anomaly: witness, repair step,
	// minimal form.
	Diagnosis = analyze.Diagnosis
	// TreeMVD is a multivalued dependency over tree tuples.
	TreeMVD = analyze.TreeMVD
	// Preservation reports which original FDs survive a normalization.
	Preservation = xnf.Preservation
	// Node is one element node of a Tree.
	Node = xmltree.Node
	// NodeID identifies a node within a Tree.
	NodeID = xmltree.NodeID
	// UnknownNodeError is the typed failure of a Session edit (or any
	// indexed tree operation) addressed at a NodeID that is not in the
	// tree; test with errors.As.
	UnknownNodeError = xmltree.UnknownNodeError
	// Session is a stateful incremental checker: it validates a
	// document once, then re-validates each edit against Σ by
	// retracting and re-asserting only the tree tuples the edit can
	// touch, instead of re-streaming the whole tree. See NewSession.
	Session = incremental.Session
	// Txn is an open transaction on a Session (Session.Begin): a batch
	// of edits folded in one retract/assert pass at Commit, invisible
	// to readers until then, undone entirely by Rollback.
	Txn = incremental.Txn
	// Snapshot is one committed epoch of a Session: an immutable
	// verdict + report readers can pin (Session.Snapshot) and keep
	// reading, lock-free, while later transactions commit.
	Snapshot = incremental.Snapshot
	// ReaderOptions configures the streaming checker entry points
	// (CheckDocumentReader); the zero value applies the default
	// nesting bound.
	ReaderOptions = xfd.ReaderOptions
	// MalformedError is the typed failure for input rejected by the
	// XML reader or the data model's structural rules; test with
	// errors.As.
	MalformedError = xmltree.MalformedError
	// DepthError is the typed failure for element nesting beyond the
	// configured streaming bound; test with errors.As.
	DepthError = xmltree.DepthError
)

// ParseSpec reads the "DTD %% FDs" specification format. The FD section
// may be empty or absent.
func ParseSpec(text string) (Spec, error) {
	dtdPart, fdPart := splitSpec(text)
	d, err := dtd.Parse(dtdPart)
	if err != nil {
		return Spec{}, err
	}
	fds, err := xfd.ParseSet(fdPart)
	if err != nil {
		return Spec{}, err
	}
	s := Spec{DTD: d, FDs: fds}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

func splitSpec(text string) (string, string) {
	lines := strings.Split(text, "\n")
	for i, l := range lines {
		if strings.TrimSpace(l) == "%%" {
			return strings.Join(lines[:i], "\n"), strings.Join(lines[i+1:], "\n")
		}
	}
	return text, ""
}

// FormatSpec renders a specification in the parseable format.
func FormatSpec(s Spec) string {
	var b strings.Builder
	b.WriteString(s.DTD.String())
	b.WriteString("%%\n")
	b.WriteString(xfd.FormatSet(s.FDs))
	return b.String()
}

// ParseDocument reads an XML document.
func ParseDocument(text string) (*Tree, error) {
	return xmltree.ParseString(text)
}

// ParseDocumentReader reads an XML document from a reader without
// buffering the raw bytes (the tree is still materialized; see
// CheckDocumentReader for checking without one).
func ParseDocumentReader(r io.Reader) (*Tree, error) {
	return xmltree.Parse(r)
}

// CheckDocumentReader checks the document arriving on r against Σ in
// one streaming pass, without materializing its tree or buffering its
// bytes: memory is bounded by nesting depth and the checker's fold
// state, independent of document length for chain-shaped dependencies.
// It returns the violated FDs with first-conflict witnesses in Σ
// order, exactly as Violations reports on the parsed tree. An empty Σ
// degenerates to pure structural validation. Malformed input fails
// with a *MalformedError, nesting beyond ReaderOptions.MaxDepth with a
// *DepthError.
func CheckDocumentReader(r io.Reader, sigma []FD, opts ReaderOptions) ([]Violated, error) {
	cs, err := xfd.NewCheckerSetFor(sigma)
	if err != nil {
		return nil, err
	}
	return cs.ViolationsReader(r, opts)
}

// CheckXNF decides whether the specification is in XNF and returns the
// anomalous FDs.
func CheckXNF(s Spec) (bool, []Anomaly, error) { return xnf.Check(s) }

// CheckXNFOpts is CheckXNF with explicit engine options.
func CheckXNFOpts(s Spec, eo EngineOptions) (bool, []Anomaly, error) {
	return xnf.CheckOpts(s, eo)
}

// NewEngine builds a reusable implication engine for the
// specification: answers are memoized per canonicalized query and
// batch operations fan out across the configured workers. All engine
// methods are safe for concurrent use.
func NewEngine(s Spec, eo EngineOptions) (*Engine, error) {
	return engine.New(s.DTD, s.FDs, eo)
}

// Normalize converts the specification into one in XNF, returning the
// applied steps; each step carries the document transformation needed
// to migrate documents (see TransformDocument).
func Normalize(s Spec, opts NormalizeOptions) (Spec, []Step, error) {
	return xnf.Normalize(s, opts)
}

// TransformDocument migrates a document of the original DTD across the
// steps returned by Normalize, in place.
func TransformDocument(t *Tree, steps []Step) error { return xnf.ApplySteps(t, steps) }

// ReconstructDocument inverts TransformDocument, witnessing that the
// decomposition was lossless.
func ReconstructDocument(t *Tree, steps []Step) error { return xnf.InvertSteps(t, steps) }

// CheckPreservation reports which of the original FDs are still
// enforced by the normalized specification (after rewriting their paths
// along the transformation steps) — the XML analogue of relational
// dependency preservation.
func CheckPreservation(orig, norm Spec, steps []Step) (Preservation, error) {
	return xnf.CheckPreservation(orig, norm, steps)
}

// MinimalCover computes an equivalent reduced FD set: single right-hand
// sides, no trivial FDs, no extraneous LHS paths, no redundant members,
// in canonical order (byte-stable rendering).
func MinimalCover(s Spec) ([]FD, error) { return xnf.MinimalCover(s) }

// Analyze produces the schema-analysis report of a specification:
// candidate keys up to the configured size, the canonical cover with a
// per-FD classification of Σ (essential / weakened / redundant), a
// diagnosis of every XNF anomaly with witness and repair step, and the
// 4XNF (4NF-of-the-flat-image) verdict. The report is deterministic
// across worker counts and cache settings.
func Analyze(s Spec, opts AnalyzeOptions) (*AnalysisReport, error) {
	return analyze.Analyze(s, opts)
}

// ParseTreeMVD parses a tree MVD in "lhs, ... ->> rhs, ..." dotted
// path notation.
func ParseTreeMVD(text string) (TreeMVD, error) { return analyze.ParseTreeMVD(text) }

// Implies decides (D, Σ) ⊢ q.
func Implies(s Spec, q FD) (ImplicationAnswer, error) {
	return implication.Implies(s.DTD, s.FDs, q)
}

// ImpliesOpts decides (D, Σ) ⊢ q through a fresh engine with the given
// options; for one-shot queries it matches Implies, while callers with
// many queries should keep an Engine from NewEngine instead.
func ImpliesOpts(s Spec, q FD, eo EngineOptions) (ImplicationAnswer, error) {
	eng, err := engine.New(s.DTD, s.FDs, eo)
	if err != nil {
		return ImplicationAnswer{}, err
	}
	return eng.Implies(q)
}

// Trivial decides whether q follows from the DTD alone.
func Trivial(d *DTD, q FD) (bool, error) { return implication.Trivial(d, q) }

// Satisfies checks T ⊨ q.
func Satisfies(t *Tree, q FD) bool { return xfd.Satisfies(t, q) }

// SatisfiesAll checks T ⊨ Σ in one streaming walk of the document —
// the tuple product is never materialized, so there is no cap on how
// many maximal tuples T may have.
func SatisfiesAll(t *Tree, sigma []FD) bool { return xfd.SatisfiesAll(t, sigma) }

// Violated pairs a violated FD with a witness pair of tuple
// projections that agree on its LHS but differ on its RHS.
type Violated = xfd.Violated

// Violations checks every FD of Σ against the document in one
// streaming walk and returns the violated ones with first-conflict
// witnesses, in Σ order. A valid document yields nil.
func Violations(t *Tree, sigma []FD) []Violated {
	return xfd.ViolationReport(t, sigma)
}

// ViolationsOpts is Violations with the verdict pass sharded across
// the engine options' worker count (see xfd.CheckerSet): the root's
// top-level sibling choices fan out to a worker pool, and witnesses
// are re-derived sequentially for the violated FDs only, so the report
// is identical to Violations' regardless of worker count.
func ViolationsOpts(t *Tree, sigma []FD, eo EngineOptions) []Violated {
	if len(sigma) == 0 {
		return nil
	}
	cs, err := xfd.NewCheckerSetFor(sigma)
	if err != nil {
		return nil // unreachable: the query universe interns all of Σ's paths
	}
	return cs.ViolationsSharded(t, eo.WorkerCount())
}

// ViolationsCtx is ViolationsOpts under a context: cancellation or a
// deadline aborts the in-flight sharded fold promptly and returns the
// context's error — how a server bounds a from-scratch verdict pass by
// the request's lifetime. The compiled checker comes from the
// process-global registry, so repeated calls over one Σ compile once.
func ViolationsCtx(ctx context.Context, t *Tree, sigma []FD, eo EngineOptions) ([]Violated, error) {
	if len(sigma) == 0 {
		return nil, ctx.Err()
	}
	cs, err := engine.SharedCheckers(sigma)
	if err != nil {
		return nil, err
	}
	return cs.ViolationsShardedCtx(ctx, t, eo.WorkerCount())
}

// NewSession builds an incremental checker for the specification's Σ
// over the document: one full validation pass up front, then each
// edit — a batched Txn from Session.Begin, or the single-edit
// convenience methods — re-validates by streaming only the tuples
// crossing the edited region. Session.Violated reports the violated
// FD indices (Σ order) in O(|Σ|); Session.Report derives full witness
// reports that are bit-identical to Violations on the current tree.
// Apply every mutation through the Session — editing the tree
// directly leaves its state stale.
//
// Concurrency: one writer at a time (Begin serializes), while
// Violated, Satisfied, Report and Snapshot are safe from any number
// of goroutines and never block on a writer. Sessions over the same Σ
// share one compiled checker through the process-global registry, so
// a server hosting many documents under one spec compiles it once.
func NewSession(s Spec, doc *Tree) (*Session, error) {
	cs, err := engine.SharedCheckers(s.FDs)
	if err != nil {
		return nil, err
	}
	return incremental.New(cs, doc)
}

// Conforms checks T ⊨ D; ConformsUnordered checks [T] ⊨ D.
func Conforms(t *Tree, d *DTD) error { return xmltree.Conforms(t, d) }

// ConformsUnordered checks conformance up to reordering of children.
func ConformsUnordered(t *Tree, d *DTD) error { return xmltree.ConformsUnordered(t, d) }

// MeasureRedundancy quantifies the redundancy the specification's
// anomalous FDs cause in a document.
func MeasureRedundancy(s Spec, t *Tree) (RedundancyReport, error) {
	return xnf.MeasureRedundancy(s, t)
}

// Classify summarizes a DTD against the paper's Section 7 taxonomy.
type Classification struct {
	Recursive   bool
	Simple      bool
	Disjunctive bool
	ND          int64 // 0 when not disjunctive or recursive
	Relational  string
	Paths       int // 0 when recursive
}

// ClassifyDTD computes the classification.
func ClassifyDTD(d *DTD) Classification {
	c := Classification{
		Recursive:   d.IsRecursive(),
		Simple:      d.IsSimple(),
		Disjunctive: d.IsDisjunctive(),
		Relational:  d.RelationalHeuristic().String(),
	}
	if !c.Recursive {
		if ps, err := d.Paths(); err == nil {
			c.Paths = len(ps)
		}
		if c.Disjunctive {
			if nd, err := d.ND(); err == nil {
				c.ND = nd
			}
		}
	}
	return c
}

// String renders the classification.
func (c Classification) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "recursive:   %v\n", c.Recursive)
	fmt.Fprintf(&b, "simple:      %v\n", c.Simple)
	fmt.Fprintf(&b, "disjunctive: %v", c.Disjunctive)
	if c.Disjunctive && !c.Recursive {
		fmt.Fprintf(&b, " (N_D = %d)", c.ND)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "relational:  %s\n", c.Relational)
	if !c.Recursive {
		fmt.Fprintf(&b, "paths(D):    %d\n", c.Paths)
	}
	return b.String()
}
