package xmlnorm

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func load(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec(load(t, "courses.spec"))
	if err != nil {
		t.Fatal(err)
	}
	if s.DTD.Root() != "courses" || len(s.FDs) != 3 {
		t.Fatalf("spec = root %q, %d FDs", s.DTD.Root(), len(s.FDs))
	}
	// Round trip.
	again, err := ParseSpec(FormatSpec(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(again.FDs) != 3 {
		t.Errorf("round trip lost FDs")
	}
	// DTD-only spec.
	only, err := ParseSpec(load(t, "courses.dtd"))
	if err != nil {
		t.Fatal(err)
	}
	if len(only.FDs) != 0 {
		t.Error("DTD-only spec should have no FDs")
	}
	// Errors.
	if _, err := ParseSpec("garbage"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ParseSpec(load(t, "courses.dtd") + "%%\nbad fd line"); err == nil {
		t.Error("bad FD accepted")
	}
	if _, err := ParseSpec(load(t, "courses.dtd") + "%%\ncourses.nope -> courses"); err == nil {
		t.Error("FD over invalid path accepted")
	}
}

// TestEndToEnd drives the whole pipeline through the public API: parse,
// check, normalize, migrate the document, measure redundancy,
// reconstruct.
func TestEndToEnd(t *testing.T) {
	s, err := ParseSpec(load(t, "courses.spec"))
	if err != nil {
		t.Fatal(err)
	}
	ok, anomalies, err := CheckXNF(s)
	if err != nil {
		t.Fatal(err)
	}
	if ok || len(anomalies) != 1 {
		t.Fatalf("check: ok=%v anomalies=%v", ok, anomalies)
	}

	doc, err := ParseDocument(load(t, "courses.xml"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Conforms(doc, s.DTD); err != nil {
		t.Fatal(err)
	}
	if !SatisfiesAll(doc, s.FDs) {
		t.Fatal("document should satisfy Σ")
	}
	before, err := MeasureRedundancy(s, doc)
	if err != nil {
		t.Fatal(err)
	}
	if before.Redundant != 1 {
		t.Errorf("redundancy before = %d, want 1", before.Redundant)
	}

	out, steps, err := Normalize(s, NormalizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ok, _, err = CheckXNF(out)
	if err != nil || !ok {
		t.Fatalf("normalized spec not XNF: %v %v", ok, err)
	}

	original := doc.Clone()
	if err := TransformDocument(doc, steps); err != nil {
		t.Fatal(err)
	}
	if err := ConformsUnordered(doc, out.DTD); err != nil {
		t.Errorf("migrated document: %v", err)
	}
	after, err := MeasureRedundancy(out, doc)
	if err != nil {
		t.Fatal(err)
	}
	if after.Redundant != 0 {
		t.Errorf("redundancy after = %d, want 0", after.Redundant)
	}
	if err := ReconstructDocument(doc, steps); err != nil {
		t.Fatal(err)
	}
	if doc.Canonical() != original.Canonical() {
		t.Error("reconstruction is not the original document")
	}
}

func TestImpliesAndTrivial(t *testing.T) {
	s, err := ParseSpec(load(t, "dblp.spec"))
	if err != nil {
		t.Fatal(err)
	}
	q := s.FDs[1] // FD5 is in Σ
	ans, err := Implies(s, q)
	if err != nil || !ans.Implied {
		t.Fatalf("Σ member should be implied: %v %v", ans, err)
	}
	triv, err := Trivial(s.DTD, q)
	if err != nil || triv {
		t.Fatalf("FD5 is not trivial: %v %v", triv, err)
	}
}

func TestClassifyDTD(t *testing.T) {
	s, err := ParseSpec(load(t, "courses.spec"))
	if err != nil {
		t.Fatal(err)
	}
	c := ClassifyDTD(s.DTD)
	if !c.Simple || !c.Disjunctive || c.Recursive || c.ND != 1 || c.Paths != 12 {
		t.Errorf("classification = %+v", c)
	}
	out := c.String()
	for _, want := range []string{"simple:      true", "N_D = 1", "paths(D):    12"} {
		if !strings.Contains(out, want) {
			t.Errorf("classification output missing %q:\n%s", want, out)
		}
	}
}

// FuzzParseSpec fuzzes the spec parser, seeded with every spec file in
// testdata. The parser must never panic; any input it accepts must
// survive a FormatSpec/ParseSpec round trip with the same root and FD
// count (accepted specs are always validated, so downstream code may
// rely on their invariants).
func FuzzParseSpec(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "*.spec"))
	if err != nil {
		f.Fatal(err)
	}
	if len(seeds) == 0 {
		f.Fatal("no testdata/*.spec seeds")
	}
	for _, name := range seeds {
		b, err := os.ReadFile(name)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(b))
	}
	f.Add("garbage")
	f.Add("<!ELEMENT r EMPTY>\n%%\n")
	f.Add("<!ELEMENT r (a*)>\n<!ELEMENT a EMPTY>\n<!ATTLIST a x CDATA #REQUIRED>\n%%\nr.a.@x -> r.a\n")
	// Wide seeds whose path universes exceed 64 entries, so the interned
	// path-sets spill past a single bitset word (internal/paths stores
	// sets as []uint64; these exercise the multi-word carry/compare
	// paths through the whole pipeline, not just the parser).
	var wide strings.Builder
	wide.WriteString("<!ELEMENT r (a*,b*)>\n")
	for _, el := range []string{"a", "b"} {
		fmt.Fprintf(&wide, "<!ELEMENT %s EMPTY>\n<!ATTLIST %s\n", el, el)
		for i := 0; i < 40; i++ {
			fmt.Fprintf(&wide, "  k%02d CDATA #REQUIRED\n", i)
		}
		wide.WriteString(">\n")
	}
	// FDs touching the first and last attributes of each element keep
	// both ends of the (>160-path) universe live in the same bitsets.
	wide.WriteString("%%\nr.a.@k00 -> r.a\nr.a.@k39 -> r.a.@k00\nr.b.@k00, r.b.@k39 -> r.b\n")
	f.Add(wide.String())
	var deep strings.Builder
	for i := 0; i < 70; i++ {
		next := fmt.Sprintf("e%02d", i+1)
		this := "r"
		if i > 0 {
			this = fmt.Sprintf("e%02d", i)
		}
		fmt.Fprintf(&deep, "<!ELEMENT %s (%s?)>\n", this, next)
	}
	deep.WriteString("<!ELEMENT e70 EMPTY>\n<!ATTLIST e70 id CDATA #REQUIRED>\n%%\n")
	deep.WriteString("r.e01.e02.e03.e04.e05.e06.e07.e08.e09.e10" +
		".e11.e12.e13.e14.e15.e16.e17.e18.e19.e20" +
		".e21.e22.e23.e24.e25.e26.e27.e28.e29.e30" +
		".e31.e32.e33.e34.e35.e36.e37.e38.e39.e40" +
		".e41.e42.e43.e44.e45.e46.e47.e48.e49.e50" +
		".e51.e52.e53.e54.e55.e56.e57.e58.e59.e60" +
		".e61.e62.e63.e64.e65.e66.e67.e68.e69.e70.@id -> r.e01\n")
	f.Add(deep.String())
	f.Fuzz(func(t *testing.T, text string) {
		s, err := ParseSpec(text)
		if err != nil {
			return
		}
		again, err := ParseSpec(FormatSpec(s))
		if err != nil {
			t.Fatalf("accepted spec failed to re-parse: %v\ninput: %q", err, text)
		}
		if again.DTD.Root() != s.DTD.Root() || len(again.FDs) != len(s.FDs) {
			t.Fatalf("round trip changed the spec: root %q/%d FDs -> %q/%d FDs",
				s.DTD.Root(), len(s.FDs), again.DTD.Root(), len(again.FDs))
		}
	})
}
